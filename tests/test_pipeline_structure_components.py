"""Tests for the architecture description, signals, instructions, scoreboard, arbitration."""

import pytest

from repro.expr import Var, eval_expr
from repro.pipeline import (
    Architecture,
    ArchitectureError,
    CompletionBusSpec,
    FixedPriorityArbiter,
    InstructionKind,
    PipeSpec,
    Program,
    RoundRobinArbiter,
    Scoreboard,
    ScoreboardSpec,
    StageRef,
    StallInput,
    alu,
    bubble,
    fixed_priority_grant_expressions,
    make_arbiter,
    store,
    wait,
)
from repro.pipeline import signals as sig
from repro.pipeline.arbitration import (
    arbitration_environment_assumptions,
    work_conserving_assumption,
)


class TestSignals:
    def test_naming_conventions_match_paper(self):
        assert sig.moe_name("long", 4) == "long.4.moe"
        assert sig.rtm_name("short", 1) == "short.1.rtm"
        assert sig.req_name("long") == "long.req"
        assert sig.gnt_name("short") == "short.gnt"
        assert sig.scoreboard_name(3) == "scb[3]"
        assert sig.bus_target_indicator("c", 5) == "c.regaddr=5"
        assert sig.stage_regaddr_indicator("long", 1, "src", 2) == "long.1.src.regaddr=2"
        assert sig.wait_name("long") == "long.op_is_WAIT"
        assert sig.interrupt_name() == "interrupt"
        assert sig.interrupt_name("a") == "a.interrupt"

    def test_hdl_identifier_sanitisation(self):
        assert sig.to_hdl_identifier("long.4.moe") == "long_4_moe"
        assert sig.to_hdl_identifier("scb[3]") == "scb_3_"
        assert sig.to_hdl_identifier("c.regaddr=5") == "c_regaddr_eq_5"
        assert sig.to_hdl_identifier("1weird") .startswith("_")

    def test_merge_valuations_detects_conflicts(self):
        assert sig.merge_valuations({"a": True}, {"b": False}) == {"a": True, "b": False}
        with pytest.raises(ValueError):
            sig.merge_valuations({"a": True}, {"a": False})

    def test_filter_prefix_and_sorted_names(self):
        valuation = {"long.1.moe": True, "short.1.moe": False}
        assert sig.filter_prefix(valuation, "long") == {"long.1.moe": True}
        assert sig.sorted_names(valuation) == ["long.1.moe", "short.1.moe"]


class TestStructure:
    def test_stage_refs(self):
        pipe = PipeSpec(name="long", num_stages=4, completion_bus="c")
        assert pipe.issue_stage == StageRef("long", 1)
        assert pipe.completion_stage == StageRef("long", 4)
        assert [s.index for s in pipe.stages()] == [1, 2, 3, 4]
        assert pipe.stage(2).moe == "long.2.moe"
        with pytest.raises(ArchitectureError):
            pipe.stage(9)

    def test_pipe_validation(self):
        with pytest.raises(ArchitectureError):
            PipeSpec(name="p", num_stages=0)
        with pytest.raises(ArchitectureError):
            PipeSpec(name="p", num_stages=2, shunt_stages=(5,))

    def test_bus_validation(self):
        with pytest.raises(ArchitectureError):
            CompletionBusSpec(name="c", priority=())
        with pytest.raises(ArchitectureError):
            CompletionBusSpec(name="c", priority=("a", "a"))

    def test_scoreboard_validation(self):
        with pytest.raises(ArchitectureError):
            ScoreboardSpec(num_registers=0)
        assert ScoreboardSpec(num_registers=2).bit_names() == ["scb[0]", "scb[1]"]

    def test_architecture_cross_validation(self):
        pipe = PipeSpec(name="p", num_stages=2, completion_bus="c")
        bus = CompletionBusSpec(name="c", priority=("p",))
        Architecture(name="ok", pipes=[pipe], buses=[bus])
        with pytest.raises(ArchitectureError):
            Architecture(name="dup", pipes=[pipe, pipe], buses=[bus])
        with pytest.raises(ArchitectureError):
            Architecture(
                name="unknown-bus",
                pipes=[PipeSpec(name="p", num_stages=2, completion_bus="zzz")],
                buses=[],
            )
        with pytest.raises(ArchitectureError):
            Architecture(
                name="bus-pipe-mismatch",
                pipes=[PipeSpec(name="p", num_stages=2)],
                buses=[CompletionBusSpec(name="c", priority=("p",))],
            )
        with pytest.raises(ArchitectureError):
            Architecture(name="no-pipes", pipes=[], buses=[])
        with pytest.raises(ArchitectureError):
            Architecture(
                name="bad-lockstep",
                pipes=[pipe],
                buses=[bus],
                lockstep_groups=[("p",)],
            )
        with pytest.raises(ArchitectureError):
            Architecture(
                name="bad-stall-input",
                pipes=[pipe],
                buses=[bus],
                extra_stall_inputs=[StallInput(signal="x", applies_to=("ghost",))],
            )

    def test_lookups(self, example_arch):
        assert example_arch.pipe("long").num_stages == 4
        assert example_arch.bus("c").priority == ("short", "long")
        with pytest.raises(ArchitectureError):
            example_arch.pipe("ghost")
        with pytest.raises(ArchitectureError):
            example_arch.bus("ghost")
        assert [p.name for p in example_arch.pipes_on_bus("c")] == ["short", "long"]
        assert example_arch.lockstep_partners("long") == ["short"]
        assert example_arch.lockstep_partners("short") == ["long"]
        assert example_arch.wait_signals_for("long") == ["op_is_WAIT"]
        assert example_arch.wait_signals_for("short") == []

    def test_signal_inventories(self, example_arch):
        assert len(example_arch.moe_signals()) == 6
        assert len(example_arch.rtm_signals()) == 6
        assert set(example_arch.grant_signals()) == {"long.gnt", "short.gnt"}
        assert set(example_arch.request_signals()) == {"long.req", "short.req"}
        assert len(example_arch.scoreboard_signals()) == 2
        assert len(example_arch.bus_target_signals()) == 2
        assert len(example_arch.issue_regaddr_signals()) == 2 * 2 * 2
        inputs = example_arch.input_signals()
        assert len(inputs) == len(set(inputs))
        assert example_arch.stage_count() == 6

    def test_completion_stages(self, example_arch):
        assert {str(s) for s in example_arch.completion_stages()} == {"long.4", "short.2"}

    def test_all_stages_deepest_first_per_pipe(self, example_arch):
        order = [str(s) for s in example_arch.all_stages()]
        assert order.index("long.4") < order.index("long.1")
        assert order.index("short.2") < order.index("short.1")

    def test_describe_and_diagram(self, example_arch):
        description = example_arch.describe()
        assert "pipe long" in description and "lock-step" in description
        diagram = example_arch.ascii_diagram()
        assert "long" in diagram and "short" in diagram and "completion buses" in diagram


class TestInstructions:
    def test_alu_requires_destination(self):
        with pytest.raises(ValueError):
            from repro.pipeline.instructions import Instruction

            Instruction(pipe="p", kind=InstructionKind.ALU)

    def test_wait_requires_cycles(self):
        with pytest.raises(ValueError):
            from repro.pipeline.instructions import Instruction

            Instruction(pipe="p", kind=InstructionKind.WAIT, wait_cycles=0)

    def test_factory_helpers(self):
        a = alu("long", dst=3, src=1)
        assert a.needs_writeback and a.destination_registers() == [3] and a.source_registers() == [1]
        s = store("short", src=2)
        assert not s.needs_writeback and s.source_registers() == [2]
        w = wait("long", 2)
        assert w.is_wait and w.wait_cycles == 2
        b = bubble("long")
        assert b.is_bubble

    def test_uids_are_unique_and_copy_renews(self):
        first, second = alu("p", dst=0), alu("p", dst=0)
        assert first.uid != second.uid
        clone = first.copy()
        assert clone.uid != first.uid

    def test_describe(self):
        text = alu("long", dst=3, src=1).describe()
        assert "long" in text and "dst=r3" in text and "src=r1" in text

    def test_program_queries(self):
        program = Program.from_streams(long=[alu("long", dst=0), bubble("long")], short=[])
        assert program.instruction_count() == 1
        assert program.max_length() == 2
        assert program.stream_for("short") == []
        assert program.stream_for("missing") == []
        program.external_inputs["interrupt"] = [3, 5]
        assert program.external_asserted("interrupt", 3)
        assert not program.external_asserted("interrupt", 4)


class TestScoreboard:
    def test_mark_and_complete(self):
        board = Scoreboard(ScoreboardSpec(num_registers=4))
        assert board.mark_outstanding(2)
        assert not board.mark_outstanding(2)  # already pending
        assert board.is_outstanding(2)
        assert board.outstanding_registers() == [2]
        assert board.outstanding_count() == 1
        assert board.complete(2)
        assert not board.complete(2)
        assert not board.is_outstanding(2)

    def test_hazard_with_bypass(self):
        board = Scoreboard(ScoreboardSpec(num_registers=4))
        board.mark_outstanding(1)
        assert board.is_hazard(1, bypass_addresses=[])
        assert not board.is_hazard(1, bypass_addresses=[1])
        assert not board.is_hazard(0, bypass_addresses=[])
        assert not board.is_hazard(None, bypass_addresses=[])

    def test_reset_and_signals(self):
        board = Scoreboard(ScoreboardSpec(num_registers=2))
        board.mark_outstanding(0)
        assert board.as_signals() == {"scb[0]": True, "scb[1]": False}
        board.reset()
        assert board.as_signals() == {"scb[0]": False, "scb[1]": False}

    def test_address_bounds(self):
        board = Scoreboard(ScoreboardSpec(num_registers=2))
        with pytest.raises(IndexError):
            board.mark_outstanding(2)
        with pytest.raises(IndexError):
            board.is_outstanding(-1)


class TestArbitration:
    def bus(self):
        return CompletionBusSpec(name="c", priority=("short", "long"))

    def test_fixed_priority_prefers_short(self):
        arbiter = FixedPriorityArbiter(self.bus())
        assert arbiter.grant({"short": True, "long": True}) == "short"
        assert arbiter.grant({"short": False, "long": True}) == "long"
        assert arbiter.grant({"short": False, "long": False}) is None
        grants = arbiter.grants({"short": True, "long": True})
        assert grants == {"short": True, "long": False}

    def test_round_robin_rotates(self):
        arbiter = RoundRobinArbiter(self.bus())
        both = {"short": True, "long": True}
        winners = [arbiter.grant(both) for _ in range(4)]
        assert winners == ["short", "long", "short", "long"]
        arbiter.reset()
        assert arbiter.grant(both) == "short"

    def test_round_robin_skips_idle_requesters(self):
        arbiter = RoundRobinArbiter(self.bus())
        assert arbiter.grant({"short": False, "long": True}) == "long"
        assert arbiter.grant({"short": True, "long": True}) == "short"

    def test_make_arbiter(self):
        assert isinstance(make_arbiter("fixed-priority", self.bus()), FixedPriorityArbiter)
        assert isinstance(make_arbiter("round-robin", self.bus()), RoundRobinArbiter)
        with pytest.raises(ValueError):
            make_arbiter("mystery", self.bus())

    def test_grant_expressions_match_fixed_priority(self):
        expressions = fixed_priority_grant_expressions(self.bus())
        env = {"short.req": True, "long.req": True}
        assert eval_expr(expressions["short.gnt"], env)
        assert not eval_expr(expressions["long.gnt"], env)
        env = {"short.req": False, "long.req": True}
        assert eval_expr(expressions["long.gnt"], env)

    def test_environment_assumptions_hold_for_real_arbiters(self):
        bus = self.bus()
        assumptions = arbitration_environment_assumptions(bus)
        conservation = work_conserving_assumption(bus)
        for requests in (
            {"short": False, "long": False},
            {"short": True, "long": False},
            {"short": False, "long": True},
            {"short": True, "long": True},
        ):
            for arbiter in (FixedPriorityArbiter(bus), RoundRobinArbiter(bus)):
                grants = arbiter.grants(requests)
                env = {
                    "short.req": requests["short"],
                    "long.req": requests["long"],
                    "short.gnt": grants["short"],
                    "long.gnt": grants["long"],
                }
                for assumption in assumptions:
                    assert eval_expr(assumption, env)
                assert eval_expr(conservation, env)
