"""Tests for the binary BDD artifact format and its symbolic round trips.

The load contract is exact: an artifact spliced back into its *source*
context must deduplicate into pointer-equal nodes, a fresh context must
reproduce semantically identical functions, and any mutation of the
bytes (truncation, bit flips) must be rejected by the checksum — never
silently produce a different BDD.  Both the numpy fast lane and the
pure-``array`` fallback (the ``REPRO_PURE_ARRAY`` CI leg) are exercised.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.archs import load_architecture
from repro.bdd import ArtifactError, dump_nodes, inspect_artifact, load_nodes
from repro.bdd.manager import BddManager
from repro.expr import And, Iff, Implies, Not, Or, Var, all_assignments, eval_expr
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.spec.derivation import DerivationResult
from repro.symbolic import SymbolicContext, dump_functions, load_functions

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None

NUMPY_MODES = [False] + ([True] if _np is not None else [])

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]


def expressions(max_leaves: int = 12):
    """Hypothesis strategy producing random expressions over a small alphabet."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
        ),
        max_leaves=max_leaves,
    )


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
class TestNodeRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_same_manager_splice_is_pointer_equal(self, use_numpy, expr):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(expr)
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        roots = load_nodes(context.manager, data, use_numpy=use_numpy)
        assert roots["f"] == function.node

    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_fresh_manager_load_is_semantically_equal(self, use_numpy, expr):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(expr)
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        manager = BddManager(VARIABLE_NAMES, use_numpy=use_numpy)
        node = load_nodes(manager, data, use_numpy=use_numpy)["f"]
        for assignment in all_assignments(VARIABLE_NAMES):
            expected = eval_expr(expr, assignment)
            if manager.support(node):
                assert manager.evaluate(node, assignment) == expected
            else:
                assert manager.is_true(node) == expected

    def test_terminal_roots_round_trip(self, use_numpy):
        manager = BddManager(["x"], use_numpy=use_numpy)
        data = dump_nodes(
            manager,
            roots={"t": manager.true(), "f": manager.false()},
            use_numpy=use_numpy,
        )
        fresh = BddManager(use_numpy=use_numpy)
        roots = load_nodes(fresh, data, use_numpy=use_numpy)
        assert fresh.is_true(roots["t"]) and fresh.is_false(roots["f"])

    @settings(max_examples=30, deadline=None)
    @given(expressions(), st.data())
    def test_mutated_bytes_are_rejected(self, use_numpy, expr, data_strategy):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(expr)
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        position = data_strategy.draw(
            st.integers(min_value=0, max_value=len(data) - 1)
        )
        bit = data_strategy.draw(st.integers(min_value=0, max_value=7))
        corrupt = bytearray(data)
        corrupt[position] ^= 1 << bit
        with pytest.raises(ArtifactError):
            load_nodes(BddManager(use_numpy=use_numpy), bytes(corrupt))

    def test_truncated_bytes_are_rejected(self, use_numpy):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(Var("a") & ~Var("b") | Var("c"))
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        for cut in (0, 3, len(data) // 2, len(data) - 5):
            with pytest.raises(ArtifactError):
                load_nodes(BddManager(use_numpy=use_numpy), data[:cut])

    def test_incompatible_variable_order_is_rejected(self, use_numpy):
        context = SymbolicContext(["a", "b", "c"])
        function = context.lift(Var("a") & Var("b") | Var("c"))
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        reversed_manager = BddManager(["c", "b", "a"], use_numpy=use_numpy)
        with pytest.raises(ArtifactError):
            load_nodes(reversed_manager, data, use_numpy=use_numpy)

    def test_interleaved_target_order_still_splices(self, use_numpy):
        context = SymbolicContext(["a", "b", "c"])
        function = context.lift(Var("a") & Var("b") | Var("c"))
        data = dump_nodes(
            context.manager, roots={"f": function.node}, use_numpy=use_numpy
        )
        # Extra variables between the artifact's (relative order kept).
        target = BddManager(["a", "x", "b", "y", "c"], use_numpy=use_numpy)
        node = load_nodes(target, data, use_numpy=use_numpy)["f"]
        for assignment in all_assignments(["a", "b", "c"]):
            full = dict(assignment, x=False, y=True)
            assert target.evaluate(node, full) == eval_expr(
                Var("a") & Var("b") | Var("c"), assignment
            )


class TestFunctionArtifacts:
    @settings(max_examples=40, deadline=None)
    @given(expressions(), expressions())
    def test_function_set_round_trip_with_covers(self, expr_f, expr_g):
        context = SymbolicContext(VARIABLE_NAMES)
        functions = {"f": context.lift(expr_f), "g": context.lift(expr_g)}
        data = dump_functions(functions, include_covers=True)
        loaded = load_functions(data)
        assert set(loaded.functions) == {"f", "g"}
        for name, expr in (("f", expr_f), ("g", expr_g)):
            materialized = loaded.functions[name].to_expr()
            for assignment in all_assignments(VARIABLE_NAMES):
                assert eval_expr(materialized, assignment) == eval_expr(
                    expr, assignment
                )

    def test_cover_priming_makes_to_expr_a_lookup(self):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift((Var("a") & Var("b")) | (~Var("c") & Var("d")))
        data = dump_functions({"f": function}, include_covers=True)
        loaded = load_functions(data)
        primed = loaded.functions["f"]
        assert primed.node in loaded.context._expr_cache
        # The primed cover must itself be exact, not merely cached.
        assert loaded.context.lift(primed.to_expr()).node == primed.node

    def test_load_into_source_context_is_pointer_equal(self):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(Var("a") | (Var("b") & ~Var("e")))
        data = dump_functions({"f": function})
        loaded = load_functions(data, context=context)
        assert loaded.functions["f"].node == function.node
        assert loaded.context is context

    def test_scopes_and_payload_round_trip(self):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.function(context.lift(Var("a")).node, scope=("a", "b"))
        data = dump_functions({"f": function}, payload={"answer": 42})
        loaded = load_functions(data)
        assert loaded.functions["f"].scope == ("a", "b")
        assert loaded.payload == {"answer": 42}

    def test_mixed_contexts_are_rejected(self):
        one = SymbolicContext(VARIABLE_NAMES)
        other = SymbolicContext(VARIABLE_NAMES)
        with pytest.raises(ValueError):
            dump_functions({"f": one.lift(Var("a")), "g": other.lift(Var("b"))})


class TestDerivationArtifacts:
    def _derivation(self, arch_name="fam-r2w1d3s1-bypass"):
        spec = build_functional_spec(load_architecture(arch_name))
        return spec, symbolic_most_liberal(spec)

    def test_round_trip_preserves_closed_forms(self):
        spec, derivation = self._derivation()
        data = derivation.to_artifact_bytes(include_covers=True)
        loaded = DerivationResult.from_artifact_bytes(spec, data)
        assert loaded.iterations == derivation.iterations
        assert loaded.feed_forward == derivation.feed_forward
        assert loaded.bdd_sizes == derivation.bdd_sizes
        for moe in spec.moe_flags():
            assert str(loaded.moe_expression(moe)) == str(
                derivation.moe_expression(moe)
            )

    def test_load_into_source_context_is_pointer_equal(self):
        spec, derivation = self._derivation()
        data = derivation.to_artifact_bytes()
        loaded = DerivationResult.from_artifact_bytes(
            spec, data, context=derivation.context
        )
        for moe in spec.moe_flags():
            assert loaded.moe_functions[moe].node == derivation.moe_functions[moe].node

    def test_wrong_spec_is_rejected(self):
        spec, derivation = self._derivation()
        other_spec, _ = self._derivation("fam-r2w1d4s1-bypass")
        data = derivation.to_artifact_bytes()
        with pytest.raises(ArtifactError):
            DerivationResult.from_artifact_bytes(other_spec, data)

    def test_corrupt_artifact_is_rejected(self):
        spec, derivation = self._derivation()
        data = derivation.to_artifact_bytes()
        with pytest.raises(ArtifactError):
            DerivationResult.from_artifact_bytes(spec, data[:-5])

    def test_expression_backed_results_cannot_serialize(self):
        spec, _ = self._derivation()
        expr_backed = symbolic_most_liberal(spec, backend="expr")
        with pytest.raises(ValueError):
            expr_backed.to_artifact_bytes()

    def test_inspect_summarizes_without_splicing(self):
        spec, derivation = self._derivation()
        summary = inspect_artifact(derivation.to_artifact_bytes(include_covers=True))
        assert summary["payload"]["spec"] == spec.name
        assert summary["payload"]["kind"] == "derivation"
        assert summary["roots"] == sorted(spec.moe_flags())
        assert summary["has_covers"] is True
        assert summary["num_nodes"] > 0
