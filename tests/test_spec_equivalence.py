"""Tests for specification equivalence and refinement (repro.spec.equivalence)."""

import pytest

from repro.expr import Var, parse_expr
from repro.pipeline import ClosedFormInterlock
from repro.spec import (
    FunctionalSpec,
    SpecificationError,
    StallClause,
    build_functional_spec,
    check_clause_equivalence,
    check_derived_equivalence,
    check_refinement,
    conservative_variant,
    interlocks_equivalent,
    symbolic_most_liberal,
)


def _respelled(spec):
    """The same specification with each condition rewritten but equivalent."""
    clauses = []
    for clause in spec.clauses:
        condition = clause.condition
        # A | A is logically the same condition, just spelled differently.
        clauses.append(StallClause(moe=clause.moe, condition=condition | condition,
                                   label=clause.label))
    return FunctionalSpec(
        name=f"{spec.name}-respelled",
        clauses=clauses,
        inputs=list(spec.inputs),
        metadata=dict(spec.metadata),
    )


class TestClauseEquivalence:
    def test_spec_is_equivalent_to_itself(self, example_spec):
        report = check_clause_equivalence(example_spec, example_spec)
        assert report.equivalent
        assert report.differing_flags() == []

    def test_respelled_spec_is_equivalent(self, example_spec):
        report = check_clause_equivalence(example_spec, _respelled(example_spec))
        assert report.equivalent

    def test_textually_different_conditions_detected(self, example_spec):
        clauses = [
            StallClause(moe=c.moe, condition=c.condition, label=c.label)
            for c in example_spec.clauses
        ]
        # Drop the WAIT disjunct from the long issue stage.
        target = next(i for i, c in enumerate(clauses) if c.moe == "long.1.moe")
        weakened = parse_expr("long.1.rtm & !long.2.moe")
        clauses[target] = StallClause(moe="long.1.moe", condition=weakened)
        other = FunctionalSpec(name="weakened", clauses=clauses, inputs=list(example_spec.inputs))
        report = check_clause_equivalence(example_spec, other)
        assert not report.equivalent
        assert "long.1.moe" in report.differing_flags()
        comparison = next(f for f in report.flags if f.moe == "long.1.moe")
        assert comparison.counterexample is not None

    def test_mismatched_stages_rejected(self, example_spec, risc_spec):
        with pytest.raises(SpecificationError):
            check_clause_equivalence(example_spec, risc_spec)

    def test_describe_mentions_verdict(self, example_spec):
        text = check_clause_equivalence(example_spec, example_spec).describe()
        assert "equivalent" in text


class TestDerivedEquivalence:
    def test_respelled_spec_induces_same_interlock(self, example_spec):
        report = check_derived_equivalence(example_spec, _respelled(example_spec))
        assert report.equivalent

    def test_conservative_variant_differs(self, example_arch, example_spec):
        conservative = conservative_variant(example_arch)
        report = check_derived_equivalence(example_spec, conservative)
        assert not report.equivalent


class TestRefinement:
    def test_spec_refines_itself(self, example_spec):
        report = check_refinement(example_spec, example_spec)
        assert report.equivalent
        assert report.functionally_refines
        assert report.performance_refines

    def test_conservative_variant_is_safe_but_slower(self, example_arch, example_spec):
        conservative = conservative_variant(example_arch)
        report = check_refinement(conservative, example_spec)
        # It stalls whenever the reference requires (safe) ...
        assert report.functionally_refines
        # ... but also in situations the reference does not justify (slower).
        assert not report.performance_refines
        assert report.extra_stall_flags()
        assert not report.equivalent

    def test_weakened_spec_is_not_safe(self, example_spec):
        clauses = []
        for clause in example_spec.clauses:
            condition = clause.condition
            if clause.moe == "short.1.moe":
                condition = parse_expr("short.1.rtm & !short.2.moe")
            clauses.append(StallClause(moe=clause.moe, condition=condition, label=clause.label))
        weakened = FunctionalSpec(name="weak", clauses=clauses, inputs=list(example_spec.inputs))
        report = check_refinement(weakened, example_spec)
        assert not report.functionally_refines
        assert "short.1.moe" in report.missing_stall_flags()

    def test_describe_reports_both_directions(self, example_arch, example_spec):
        conservative = conservative_variant(example_arch)
        text = check_refinement(conservative, example_spec).describe()
        assert "functionally safe" in text
        assert "performance equal" in text


class TestInterlockEquivalence:
    def test_same_derivation_twice(self, example_spec):
        first = ClosedFormInterlock.from_derivation(symbolic_most_liberal(example_spec))
        second = ClosedFormInterlock.from_spec(example_spec)
        report = interlocks_equivalent(first.expressions(), second.expressions())
        assert report.equivalent

    def test_mutated_interlock_detected(self, example_spec, example_interlock):
        mutated = example_interlock.with_replaced_flag(
            "long.4.moe", example_interlock.expression_for("long.4.moe") & ~Var("short.req")
        )
        report = interlocks_equivalent(example_interlock.expressions(), mutated.expressions())
        assert not report.equivalent
        assert "long.4.moe" in report.differing_flags()

    def test_mismatched_flag_sets_rejected(self, example_interlock):
        expressions = dict(example_interlock.expressions())
        expressions.pop("long.4.moe")
        with pytest.raises(SpecificationError):
            interlocks_equivalent(example_interlock.expressions(), expressions)
