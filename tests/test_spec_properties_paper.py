"""Tests for the Section 3 property checks and the literal paper case study.

The paper case-study tests are the headline correctness results of the
reproduction: the automatically built specification is logically equivalent
to the Figure 2 formula, the derived performance specification to Figure 3,
and the Section 3 properties all hold and are machine-checked.
"""

import pytest

from repro.archs import (
    example_architecture,
    paper_combined_formula,
    paper_functional_formula,
    paper_performance_formula,
    paper_stall_conditions,
)
from repro.bdd import ExprBddContext
from repro.expr import FALSE, Or, Var
from repro.spec import (
    FunctionalSpec,
    StallClause,
    build_functional_spec,
    check_all_false_satisfies,
    check_all_properties,
    check_disjunction_closure,
    check_maximality,
    check_monotonicity,
    check_most_liberal_satisfies,
    derive_performance_spec,
    symbolic_most_liberal,
)
from repro.spec.properties import check_semantic_monotonicity


class TestSectionThreeProperties:
    def test_all_properties_hold_for_example(self, example_spec):
        report = check_all_properties(example_spec)
        assert report.all_hold(), report.describe()

    def test_all_properties_hold_for_risc(self, risc_spec):
        report = check_all_properties(risc_spec)
        assert report.all_hold(), report.describe()

    def test_all_properties_hold_for_firepath_like(self, firepath_spec):
        report = check_all_properties(firepath_spec)
        assert report.all_hold(), report.describe()

    def test_report_lookup_and_describe(self, example_spec):
        report = check_all_properties(example_spec)
        assert report.check("property-1-all-false-satisfies").holds
        with pytest.raises(KeyError):
            report.check("missing")
        assert "Section 3" in report.describe()

    def test_property_one_direct(self, example_spec):
        assert check_all_false_satisfies(example_spec).holds

    def test_property_two_direct_and_semantic(self, example_spec):
        assert check_disjunction_closure(example_spec).holds
        assert check_semantic_monotonicity(example_spec).holds

    def test_property_three_and_maximality(self, example_spec, example_derivation):
        assert check_most_liberal_satisfies(example_spec, example_derivation).holds
        assert check_maximality(example_spec, example_derivation).holds

    def test_monotonicity_check_flags_bad_spec(self):
        spec = FunctionalSpec(
            name="bad",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=Var("x")),
            ],
            inputs=["x"],
        )
        assert not check_monotonicity(spec).holds
        assert not check_semantic_monotonicity(spec).holds
        report = check_all_properties(spec)
        assert not report.all_hold()

    def test_property_one_is_trivial_for_implication_form(self):
        # The paper: "Establishing the first property is trivial, since our
        # specification does not state anything about when pipeline stages do
        # not stall."  Even a pathological clause keeps property (1) true
        # because the consequent ¬moe is satisfied by the all-false vector.
        spec = FunctionalSpec(
            name="pathological",
            clauses=[
                StallClause(moe="a.moe", condition=~Var("a.moe")),
            ],
            inputs=[],
        )
        assert check_all_false_satisfies(spec).holds

    def test_disjunction_closure_counterexample_for_non_monotone_spec(self):
        # F(a) = ¬x ∨ x∧(¬other) is monotone, so craft a genuinely
        # non-monotone condition: stall a.moe exactly when b is moving.
        spec = FunctionalSpec(
            name="bad",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=FALSE),
            ],
            inputs=[],
        )
        check = check_disjunction_closure(spec)
        assert not check.holds
        assert check.counterexample is not None

    def test_direct_closure_skipped_for_large_specs(self, firepath_spec):
        report = check_all_properties(firepath_spec)
        names = [check.name for check in report.checks]
        assert "property-2-disjunction-closure" not in names
        assert "semantic-monotonicity" in names

    def test_direct_closure_forced(self, example_spec):
        report = check_all_properties(example_spec, direct_closure=True)
        names = [check.name for check in report.checks]
        assert "property-2-disjunction-closure" in names


class TestPaperCaseStudy:
    """Figure-level equivalences with the published formulas."""

    @pytest.fixture(scope="class")
    def arch(self):
        return example_architecture(num_registers=2)

    @pytest.fixture(scope="class")
    def spec(self, arch):
        return build_functional_spec(arch)

    def test_stall_conditions_match_figure_2_per_stage(self, spec):
        context = ExprBddContext()
        for moe, paper_condition in paper_stall_conditions(2).items():
            assert context.are_equivalent(spec.condition_for(moe), paper_condition), moe

    def test_functional_formula_matches_figure_2(self, spec):
        context = ExprBddContext()
        assert context.are_equivalent(spec.functional_formula(), paper_functional_formula(2))

    def test_performance_formula_matches_figure_3(self, spec):
        context = ExprBddContext()
        performance = derive_performance_spec(spec)
        assert context.are_equivalent(performance.formula(), paper_performance_formula(2))

    def test_combined_formula_matches_section_2_2_3(self, spec):
        context = ExprBddContext()
        assert context.are_equivalent(spec.combined_formula(), paper_combined_formula(2))

    def test_full_register_count_also_matches(self, example_spec_full):
        context = ExprBddContext()
        assert context.are_equivalent(
            example_spec_full.functional_formula(), paper_functional_formula(8)
        )

    def test_figure_3_is_the_fixed_point(self, spec):
        """The derived MOE closed forms satisfy exactly the Figure 3 equivalences."""
        derivation = symbolic_most_liberal(spec)
        context = ExprBddContext()
        from repro.expr.transform import substitute

        combined = paper_combined_formula(2)
        residual = substitute(combined, derivation.moe_expressions)
        assert context.is_valid(residual)

    def test_paper_formula_satisfied_by_all_false(self, spec):
        """Property (1) exactly as stated in the paper: f(<False,...,False>)."""
        from repro.expr import FALSE
        from repro.expr.transform import substitute

        context = ExprBddContext()
        all_false = {moe: FALSE for moe in spec.moe_flags()}
        assert context.is_valid(substitute(paper_functional_formula(2), all_false))
