"""Tests for the runtime sanitizer (REPRO_SANITIZE=1).

Each bug class the sanitizer exists to catch is injected deliberately
and must raise its dedicated exception with a diagnosable message; the
equivalence tests pin that sanitized managers compute the *same results*
as plain ones, so the whole tier-1 suite can run under the env flag.
"""

import asyncio
import time

import pytest

from repro.bdd.manager import BddManager
from repro.devtools.sanitizer import (
    CrossManagerError,
    MemoLeakError,
    SanitizedBddManager,
    SanitizerError,
    UseAfterFreeError,
    loop_stall_monitor,
)

VARS = ["a", "b", "c", "d"]


def build_xor_chain(manager):
    """An unprotected composite node: a ^ b ^ c."""
    return manager.xor(
        manager.xor(manager.var("a"), manager.var("b")), manager.var("c")
    )


# ---------------------------------------------------------------------------
# Use-after-free.
# ---------------------------------------------------------------------------


def test_use_after_free_raises():
    manager = SanitizedBddManager(VARS)
    f = build_xor_chain(manager)
    manager.gc()  # f is unprotected: its slots are swept and quarantined
    with pytest.raises(UseAfterFreeError, match="sweep epoch"):
        manager.not_(f)


def test_use_after_free_survives_slot_reuse_forever():
    # Quarantine never recycles slots, so the stale id stays a tombstone
    # even after lots of fresh allocation that would normally reuse it.
    manager = SanitizedBddManager(VARS)
    f = build_xor_chain(manager)
    manager.gc()
    for _ in range(3):
        g = manager.protect(build_xor_chain(manager))
        manager.gc()
        manager.release(g)
    with pytest.raises(UseAfterFreeError):
        manager.sat_count(f)


def test_protected_node_survives_gc_and_reorder():
    manager = SanitizedBddManager(VARS)
    f = manager.protect(build_xor_chain(manager))
    expected = manager.sat_count(f)
    manager.gc()
    manager.reorder()
    assert manager.sat_count(f) == expected
    manager.release(f)


# ---------------------------------------------------------------------------
# Cross-manager detection.
# ---------------------------------------------------------------------------


def test_cross_manager_node_raises():
    small = SanitizedBddManager(["a", "b"])
    names = [f"v{i}" for i in range(80)]
    big = SanitizedBddManager(names)
    # An 80-variable chain's root id is far beyond the small manager's
    # store (a fresh two-variable manager holds well under 100 slots even
    # with maximal poison padding), so the check is deterministic.
    foreign = big.protect(big.and_all([big.var(name) for name in names]))
    with pytest.raises(CrossManagerError, match="never cross"):
        small.not_(foreign)


def test_cross_manager_error_names_owner():
    small = SanitizedBddManager(["a", "b"])
    names = [f"v{i}" for i in range(80)]
    big = SanitizedBddManager(names)
    foreign = big.protect(big.and_all([big.var(name) for name in names]))
    with pytest.raises(CrossManagerError, match="SanitizedBddManager #"):
        small.and_(small.var("a"), foreign)


def test_poison_padding_skews_id_spaces():
    # Identical structure in two fresh managers must not share ids —
    # that is exactly what makes in-range foreign ids detectable.
    one = SanitizedBddManager(VARS)
    two = SanitizedBddManager(VARS)
    assert build_xor_chain(one) != build_xor_chain(two)


def test_collection_operands_validated():
    manager = SanitizedBddManager(VARS)
    with pytest.raises(CrossManagerError):
        manager.and_all([manager.var("a"), 10**6])
    with pytest.raises(SanitizerError, match="plain ints"):
        manager.or_all([manager.var("a"), "b"])


def test_compose_many_mapping_values_validated():
    manager = SanitizedBddManager(VARS)
    f = manager.protect(build_xor_chain(manager))
    with pytest.raises(CrossManagerError):
        manager.compose_many(f, {"a": 10**6})


# ---------------------------------------------------------------------------
# Memo integrity after sweeps.
# ---------------------------------------------------------------------------


def test_injected_stale_memo_entry_raises():
    manager = SanitizedBddManager(VARS)
    f = build_xor_chain(manager)
    manager.gc()  # frees f; the caches were legitimately purged
    manager._op_cache[1 << 40] = f  # resurrect a dead id by hand
    with pytest.raises(MemoLeakError, match="op cache"):
        manager.check_integrity()


def test_clean_sweeps_pass_integrity():
    manager = SanitizedBddManager(VARS)
    f = manager.protect(build_xor_chain(manager))
    manager.gc()
    manager.reorder()
    manager.check_integrity()  # must not raise
    manager.release(f)


# ---------------------------------------------------------------------------
# Protection-leak accounting.
# ---------------------------------------------------------------------------


def test_leak_report_names_this_call_site():
    manager = SanitizedBddManager(VARS)
    leaked = manager.protect(build_xor_chain(manager))  # never released
    report = manager.leak_report()
    assert sum(report.values()) == 1
    (site,) = report
    assert "test_sanitizer.py" in site
    assert "test_sanitizer.py" in manager.describe_leaks()
    manager.release(leaked)
    assert manager.leak_report() == {}
    assert manager.describe_leaks() == ""


def test_balanced_protect_release_reports_clean():
    manager = SanitizedBddManager(VARS)
    f = manager.protect(build_xor_chain(manager))
    g = manager.protect(manager.var("d"))
    manager.release(g)
    manager.release(f)
    assert manager.leak_report() == {}


# ---------------------------------------------------------------------------
# Equivalence: sanitized managers compute identical results.
# ---------------------------------------------------------------------------


def test_sanitized_results_match_plain_manager():
    plain = BddManager(VARS)
    sanitized = SanitizedBddManager(VARS)
    for manager in (plain, sanitized):
        manager._results = []  # scratch attribute local to this test
        f = manager.protect(build_xor_chain(manager))
        g = manager.protect(manager.ite(manager.var("d"), f, manager.not_(f)))
        manager.gc()
        manager.reorder()
        manager._results = [
            manager.sat_count(f),
            manager.sat_count(g),
            manager.is_true(manager.or_(g, manager.not_(g))),
        ]
    assert plain._results == sanitized._results


def test_symbolic_context_flow_under_sanitize(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.symbolic import SymbolicContext
    from repro.symbolic.serialize import dump_functions, load_functions

    context = SymbolicContext(VARS)
    assert isinstance(context.manager, SanitizedBddManager)
    fn = context.function(build_xor_chain(context.manager))
    blob = dump_functions({"xor3": fn}, include_covers=True)
    loaded = load_functions(blob)
    assert isinstance(loaded.context.manager, SanitizedBddManager)
    reloaded = loaded.functions["xor3"]
    assert loaded.context.manager.sat_count(
        reloaded.node
    ) == context.manager.sat_count(fn.node)


# ---------------------------------------------------------------------------
# The construction hook.
# ---------------------------------------------------------------------------


def test_env_flag_swaps_construction(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert type(BddManager(["z"])) is SanitizedBddManager
    monkeypatch.delenv("REPRO_SANITIZE")
    assert type(BddManager(["z"])) is BddManager


def test_direct_subclass_construction_unaffected(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert type(SanitizedBddManager(["z"])) is SanitizedBddManager


# ---------------------------------------------------------------------------
# Event-loop stall detection.
# ---------------------------------------------------------------------------


def test_loop_stall_monitor_flags_blocking_step():
    events = []

    async def scenario():
        monitor = asyncio.create_task(
            loop_stall_monitor(interval=0.01, budget=0.05, warn=events.append)
        )
        await asyncio.sleep(0.03)  # let the monitor take its baseline
        time.sleep(0.2)  # the RPL005 bug class, committed on purpose
        await asyncio.sleep(0.03)  # give the late wakeup a chance to run
        monitor.cancel()
        try:
            await monitor
        except asyncio.CancelledError:
            pass

    asyncio.run(scenario())
    assert events
    assert "stalled" in events[0]


def test_loop_stall_monitor_quiet_when_loop_healthy():
    events = []

    async def scenario():
        monitor = asyncio.create_task(
            loop_stall_monitor(interval=0.01, budget=0.2, warn=events.append)
        )
        await asyncio.sleep(0.1)
        monitor.cancel()
        try:
            await monitor
        except asyncio.CancelledError:
            pass

    asyncio.run(scenario())
    assert events == []
