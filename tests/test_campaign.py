"""Tests for the parallel verification-campaign subsystem."""

import io
import json

import pytest

from repro.campaign import (
    CANONICAL_STAGES,
    CampaignSpec,
    CampaignSpecError,
    JobSpec,
    ResultStore,
    StoreStats,
    clear_warm_state,
    family_sweep,
    run_campaign,
    run_verification_job,
    shutdown_warm_pool,
)
from repro.campaign.runner import JobResult, StageResult
from repro.cli import main as cli_main

#: Small enough that a full six-stage job takes ~0.1 s.
TINY = dict(workload_length=24, max_faults=2)


def tiny_job(arch="fam-r2w1d3s1-bypass", **overrides):
    params = dict(TINY)
    params.update(overrides)
    return JobSpec(arch=arch, **params)


class TestSpecs:
    def test_job_round_trip(self):
        job = tiny_job(stages=("derive", "properties"), workload_seed=7)
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_stages_normalized_to_canonical_order(self):
        job = tiny_job(stages=("faults", "derive", "properties"))
        assert job.stages == ("properties", "derive", "faults")

    def test_unknown_stage_rejected(self):
        with pytest.raises(CampaignSpecError):
            tiny_job(stages=("transmogrify",))

    def test_unknown_job_field_rejected(self):
        with pytest.raises(CampaignSpecError):
            JobSpec.from_dict({"arch": "risc5", "solvent": True})

    def test_campaign_json_round_trip(self):
        spec = family_sweep(
            name="round-trip",
            registers=(2,),
            widths=(1, 2),
            depths=(3,),
            styles=("bypass",),
            extra_archs=("risc5",),
            workers=3,
        )
        assert CampaignSpec.loads(spec.dumps()) == spec

    def test_campaign_file_round_trip(self, tmp_path):
        spec = family_sweep(registers=(2,), widths=(1,), depths=(3,), styles=("bypass",))
        path = tmp_path / "campaign.json"
        spec.save(str(path))
        assert CampaignSpec.load(str(path)) == spec

    def test_job_key_is_stable_and_parameter_sensitive(self):
        job = tiny_job()
        assert job.job_key() == tiny_job().job_key()
        assert job.job_key() != tiny_job(workload_seed=1).job_key()
        assert job.job_key() != tiny_job(arch="fam-r2w1d3s1-blocking").job_key()

    def test_family_sweep_covers_the_grid(self):
        spec = family_sweep(
            registers=(2, 4), widths=(1, 2), depths=(3, 4), styles=("bypass", "blocking")
        )
        assert len(spec.jobs) == 16
        assert len({job.arch for job in spec.jobs}) == 16


class TestRunner:
    def test_tiny_job_passes_every_stage(self):
        result = run_verification_job(tiny_job())
        assert result.ok, result.error
        assert [stage.name for stage in result.stages] == list(tiny_job().stages)
        assert all(stage.ok for stage in result.stages)
        assert result.stage("derive").details["moe_flags"] > 0
        assert result.stage("analysis").details["unnecessary_stalls"] == 0
        assert result.stage("faults").details["missed"] == 0

    def test_stage_subset_runs_only_those_stages(self):
        result = run_verification_job(tiny_job(stages=("properties", "maximality")))
        assert result.ok, result.error
        assert [stage.name for stage in result.stages] == ["properties", "maximality"]

    def test_unknown_architecture_fails_cleanly(self):
        result = run_verification_job(tiny_job(arch="fam-r2w1d3s1-psychic"))
        assert not result.ok
        assert result.error is not None
        assert "psychic" in result.error

    def test_result_round_trip(self):
        result = run_verification_job(tiny_job(stages=("derive",)))
        rebuilt = JobResult.from_dict(result.as_dict())
        assert rebuilt.ok == result.ok
        assert rebuilt.job == result.job
        assert [s.as_dict() for s in rebuilt.stages] == [
            s.as_dict() for s in result.stages
        ]

    def test_result_schema_guard(self):
        payload = run_verification_job(tiny_job(stages=("derive",))).as_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError):
            JobResult.from_dict(payload)


class TestStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        job = tiny_job(stages=("derive",))
        assert store.get(job) is None
        result = run_verification_job(job)
        store.put(job, result)
        hit = store.get(job)
        assert hit is not None and hit.ok == result.ok
        assert len(store) == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = tiny_job(stages=("derive",))
        store.path_for(job).write_text("{not json", encoding="utf-8")
        assert store.get(job) is None

    def test_mismatched_job_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = tiny_job(stages=("derive",))
        other = tiny_job(stages=("derive",), workload_seed=5)
        store.put(job, run_verification_job(job))
        # Force the other job's result under this job's key.
        store.path_for(job).write_text(
            json.dumps(run_verification_job(other).as_dict()), encoding="utf-8"
        )
        assert store.get(job) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        job = tiny_job(stages=("derive",))
        store.put(job, run_verification_job(job))
        assert store.clear() == 1
        assert len(store) == 0

    def test_leaked_temp_file_is_not_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / ".tmp-leaked.part").write_text("{}", encoding="utf-8")
        assert len(store) == 0
        assert store.keys() == []


def small_campaign(workers=1, **job_overrides):
    params = dict(TINY)
    params.update(job_overrides)
    return family_sweep(
        name="test-campaign",
        registers=(2,),
        widths=(1, 2),
        depths=(3,),
        styles=("bypass", "blocking"),
        workers=workers,
        workload_length=params["workload_length"],
        max_faults=params["max_faults"],
        workload_seed=params.get("workload_seed", 0),
    )


class TestOrchestrator:
    def test_serial_campaign_all_pass(self, tmp_path):
        spec = small_campaign(workers=1)
        report = run_campaign(spec, store=ResultStore(tmp_path))
        assert report.total() == 4
        assert report.all_ok()
        assert not report.cached()

    def test_second_run_hits_the_cache(self, tmp_path):
        spec = small_campaign(workers=1)
        store = ResultStore(tmp_path)
        run_campaign(spec, store=store)
        report = run_campaign(spec, store=store)
        assert report.all_ok()
        assert len(report.cached()) == report.total()
        assert report.timing_summary()["total"] == 0.0  # nothing ran fresh

    def test_no_cache_reruns_everything(self, tmp_path):
        spec = small_campaign(workers=1)
        store = ResultStore(tmp_path)
        run_campaign(spec, store=store)
        report = run_campaign(spec, store=store, use_cache=False)
        assert not report.cached()

    def test_process_pool_campaign(self, tmp_path):
        spec = small_campaign(workers=2)
        lines = []
        report = run_campaign(spec, store=ResultStore(tmp_path), progress=lines.append)
        assert report.all_ok()
        assert report.workers == 2
        assert len(lines) == report.total()

    def test_failures_are_reported_not_raised_and_not_cached(self, tmp_path):
        spec = CampaignSpec(
            name="with-failure",
            jobs=(tiny_job(stages=("derive",)), tiny_job(arch="fam-nonsense")),
            workers=1,
        )
        store = ResultStore(tmp_path)
        report = run_campaign(spec, store=store)
        assert not report.all_ok()
        assert len(report.failed()) == 1
        assert len(report.errored()) == 1
        assert len(store) == 1  # only the passing job was cached
        rerun = run_campaign(spec, store=store)
        assert len(rerun.cached()) == 1  # the failure re-ran

    def test_report_aggregation(self, tmp_path):
        spec = small_campaign(workers=1)
        report = run_campaign(spec, store=ResultStore(tmp_path))
        payload = report.as_dict()
        assert payload["total"] == 4
        assert payload["passed"] == 4
        assert payload["stage_pass_rates"]["derive"].startswith("4/4")
        text = report.describe()
        assert "test-campaign" in text
        assert "fam-r2w2d3s1-blocking" in text


class TestStoreStats:
    def test_diff_add_round_trip(self):
        a = StoreStats(hits=3, misses=1, stage_hits=4)
        b = StoreStats(hits=5, misses=2, stage_hits=4, corrupt=1)
        delta = b.diff(a)
        assert delta == StoreStats(hits=2, misses=1, corrupt=1)
        a.add(delta)
        assert a == b
        assert StoreStats.from_dict(b.as_dict()) == b

    def test_job_lookups_are_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        job = tiny_job(stages=("properties",))
        assert store.get(job) is None
        store.put(job, run_verification_job(job))
        assert store.get(job) is not None
        store.path_for(job).write_text("{not json", encoding="utf-8")
        assert store.get(job) is None
        assert store.stats.hits == 1
        assert store.stats.misses == 2
        assert store.stats.corrupt == 1

    def test_artifact_and_stage_lookups_are_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_artifact("deadbeef") is None
        store.put_artifact("deadbeef", b"RBDD-not-checked-here")
        assert store.get_artifact("deadbeef") == b"RBDD-not-checked-here"
        assert store.get_stage("derive", "cafe") is None
        store.put_stage("cafe", StageResult(name="derive", ok=True, seconds=0.1))
        assert store.get_stage("derive", "cafe") is not None
        # A stored stage answered under the wrong stage name is corrupt.
        assert store.get_stage("faults", "cafe") is None
        s = store.stats
        assert (s.artifact_hits, s.artifact_misses) == (1, 1)
        assert (s.stage_hits, s.stage_misses) == (1, 2)
        assert s.corrupt == 1

    def test_stage_files_do_not_pollute_job_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_stage("cafe", StageResult(name="derive", ok=True, seconds=0.1))
        store.put_artifact("deadbeef", b"x")
        assert len(store) == 0
        assert store.stage_keys() == ["cafe"]
        assert store.artifact_keys() == ["deadbeef"]
        assert store.clear() == 2
        assert store.stage_keys() == [] and store.artifact_keys() == []


class TestIncremental:
    def test_stage_keys_follow_dependencies(self):
        base = tiny_job()
        seeded = tiny_job(workload_seed=9)
        for stage in ("properties", "derive", "maximality", "obligations"):
            assert base.stage_key(stage) == seeded.stage_key(stage)
        for stage in ("faults", "analysis"):
            assert base.stage_key(stage) != seeded.stage_key(stage)
        other_arch = tiny_job(arch="fam-r2w1d4s1-bypass")
        for stage in CANONICAL_STAGES:
            assert base.stage_key(stage) != other_arch.stage_key(stage)
        with pytest.raises(CampaignSpecError):
            base.stage_key("transmogrify")

    def test_campaign_populates_artifacts_and_stage_results(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_campaign(small_campaign(workers=1), store=store)
        assert report.all_ok()
        # One derivation artifact per architecture, one stage file per
        # distinct (stage, dependency-hash) pair.
        assert len(store.artifact_keys()) == 4
        assert len(store.stage_keys()) == 4 * len(CANONICAL_STAGES)
        assert report.store_stats is not None
        assert report.store_stats.misses == 4  # job-level cold misses
        assert report.cache_misses() > 0 and report.cache_corrupt() == 0

    def test_warm_state_serves_derivation(self):
        clear_warm_state()
        job = tiny_job(stages=("derive",))
        first = run_verification_job(job)
        assert first.stage("derive").details["source"] == "computed"
        second = run_verification_job(job)
        assert second.stage("derive").details["source"] == "warm"

    def test_artifact_serves_derivation_across_cold_starts(self, tmp_path):
        store = ResultStore(tmp_path)
        job = tiny_job(stages=("derive", "maximality"))
        clear_warm_state()
        first = run_verification_job(job, store=store)
        assert first.stage("derive").details["source"] == "computed"
        clear_warm_state()  # simulate a fresh worker process
        second = run_verification_job(job, store=store)
        assert second.ok
        assert second.stage("derive").details["source"] == "artifact"

    def test_corrupt_artifact_is_counted_and_rebuilt(self, tmp_path):
        from repro.bdd import inspect_artifact

        store = ResultStore(tmp_path)
        job = tiny_job(stages=("derive",))
        clear_warm_state()
        run_verification_job(job, store=store)
        key = job.stage_key("derive")
        good = store.artifact_path(key).read_bytes()
        store.artifact_path(key).write_bytes(good[:-7] + b"garbage")
        clear_warm_state()
        before = store.stats.copy()
        result = run_verification_job(job, store=store)
        assert result.ok
        assert result.stage("derive").details["source"] == "computed"
        assert store.stats.diff(before).corrupt == 1
        # The bad file was dropped and replaced by a valid artifact.
        inspect_artifact(store.artifact_path(key).read_bytes())

    def test_seed_change_reruns_only_workload_stages(self, tmp_path):
        store = ResultStore(tmp_path)
        clear_warm_state()
        cold = run_campaign(small_campaign(workers=1), store=store)
        assert cold.all_ok()
        clear_warm_state()  # reuse must come from the store, not warmth
        report = run_campaign(
            small_campaign(workers=1, workload_seed=9), store=store, incremental=True
        )
        assert report.all_ok()
        assert not report.cached()  # every job key changed with the seed
        for result in report.results:
            replayed = [
                s.name for s in result.stages if s.details.get("from_store")
            ]
            executed = [
                s.name for s in result.stages if not s.details.get("from_store")
            ]
            assert replayed == ["properties", "derive", "maximality", "obligations"]
            assert executed == ["faults", "analysis"]
        stats = report.store_stats
        assert stats.stage_hits == 4 * 4
        assert stats.stage_misses == 2 * 4
        assert stats.artifact_hits == 4  # analysis reloaded each derivation

    def test_family_edit_reruns_only_affected_jobs(self, tmp_path):
        store = ResultStore(tmp_path)
        base = family_sweep(
            name="base", registers=(2,), widths=(1,), depths=(3,),
            styles=("bypass", "blocking"), workers=1, **TINY,
        )
        assert run_campaign(base, store=store).all_ok()
        widened = family_sweep(
            name="widened", registers=(2,), widths=(1,), depths=(3, 4),
            styles=("bypass", "blocking"), workers=1, **TINY,
        )
        report = run_campaign(widened, store=store, incremental=True)
        assert report.all_ok()
        cached = {r.job.arch for r in report.results if r.cached}
        fresh = {r.job.arch for r in report.results if not r.cached}
        assert cached == {"fam-r2w1d3s1-bypass", "fam-r2w1d3s1-blocking"}
        assert fresh == {"fam-r2w1d4s1-bypass", "fam-r2w1d4s1-blocking"}

    def test_incremental_without_store_is_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(small_campaign(workers=1), store=None, incremental=True)


class TestWarmPool:
    def test_persistent_pool_is_reused_across_campaigns(self, tmp_path):
        from repro.campaign import orchestrator

        shutdown_warm_pool()
        spec = small_campaign(workers=2)
        run_campaign(spec, store=None, use_cache=False)
        pool = orchestrator._WARM_POOL
        assert pool is not None
        run_campaign(spec, store=None, use_cache=False)
        assert orchestrator._WARM_POOL is pool
        shutdown_warm_pool()
        assert orchestrator._WARM_POOL is None

    def test_worker_store_stats_are_aggregated(self, tmp_path):
        # Fresh pool AND no inherited warmth: forked workers copy the
        # parent's warm state, which would satisfy the derivation without
        # touching the store.
        shutdown_warm_pool()
        clear_warm_state()
        store = ResultStore(tmp_path)
        report = run_campaign(small_campaign(workers=2), store=store)
        assert report.all_ok()
        stats = report.store_stats
        # The workers wrote 4 artifacts (one per arch) and reported the
        # misses home; the parent only saw the job-level misses.
        assert stats.misses == 4
        assert stats.artifact_misses == 4
        # Persisted results must not leak run-specific counters.
        assert all(r.store_stats is None for r in report.results)
        shutdown_warm_pool()

    def test_on_result_streams_every_job(self, tmp_path):
        seen = []
        report = run_campaign(
            small_campaign(workers=1),
            store=ResultStore(tmp_path),
            on_result=lambda result: seen.append(result.job.arch),
        )
        assert sorted(seen) == sorted(r.job.arch for r in report.results)


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCampaignCli:
    def test_list_does_not_verify(self, tmp_path):
        code, output = run_cli(
            "campaign", "--registers", "2", "--widths", "1,2", "--depths", "3",
            "--styles", "bypass", "--list", "--store", str(tmp_path / "s"),
        )
        assert code == 0
        assert "2 jobs" in output
        assert "fam-r2w2d3s1-bypass" in output

    def test_sweep_report_and_cache(self, tmp_path):
        store = str(tmp_path / "store")
        report_path = str(tmp_path / "report.json")
        args = (
            "campaign", "--registers", "2", "--widths", "1", "--depths", "3",
            "--styles", "bypass,blocking", "--workers", "1",
            "--length", "24", "--max-faults", "1",
            "--store", store, "--report", report_path,
        )
        code, output = run_cli(*args)
        assert code == 0
        assert "2/2 (100%) passed" in output
        payload = json.loads(open(report_path, encoding="utf-8").read())
        assert payload["passed"] == 2
        code, output = run_cli(*args)
        assert code == 0
        assert output.count("cached (ok)") == 2

    def test_campaign_file_and_named_archs(self, tmp_path):
        saved = str(tmp_path / "campaign.json")
        code, output = run_cli(
            "campaign", "--no-family", "--arch", "risc5",
            "--length", "24", "--max-faults", "1", "--workers", "1",
            "--store", str(tmp_path / "store"), "--save-campaign", saved, "--list",
        )
        assert code == 0
        spec = CampaignSpec.load(saved)
        assert [job.arch for job in spec.jobs] == ["risc5"]
        code, output = run_cli(
            "campaign", "--campaign-file", saved, "--workers", "1",
            "--store", str(tmp_path / "store"),
        )
        assert code == 0
        assert "risc5" in output

    def test_csv_options_tolerate_spaces(self, tmp_path):
        code, output = run_cli(
            "campaign", "--registers", "2", "--widths", "1", "--depths", "3",
            "--styles", "bypass, blocking", "--stages", "properties, derive",
            "--list", "--store", str(tmp_path / "s"),
        )
        assert code == 0
        assert "2 jobs" in output
        assert "stages=properties,derive" in output

    def test_no_family_without_archs_is_an_error(self, tmp_path):
        code, _ = run_cli("campaign", "--no-family", "--store", str(tmp_path / "s"))
        assert code == 2

    def test_arch_accepts_family_names_everywhere(self):
        code, output = run_cli("show-arch", "--arch", "fam-r2w2d3s1-bypass")
        assert code == 0
        assert "fam-r2w2d3s1-bypass" in output
        code, output = run_cli("derive", "--arch", "fam-r2w1d3s1-blocking")
        assert code == 0
        assert "MOE" in output or "moe" in output

    def test_unknown_arch_is_a_clean_cli_error(self):
        code, _ = run_cli("show-arch", "--arch", "fam-unparseable")
        assert code == 2

    def test_incremental_requires_store(self):
        code, _ = run_cli(
            "campaign", "--registers", "2", "--widths", "1", "--depths", "3",
            "--styles", "bypass", "--store", "", "--incremental", "--workers", "1",
        )
        assert code == 2

    def test_incremental_sweep_and_cache_tally(self, tmp_path):
        store = str(tmp_path / "store")
        base = (
            "campaign", "--registers", "2", "--widths", "1", "--depths", "3",
            "--styles", "bypass", "--workers", "1",
            "--length", "24", "--max-faults", "1", "--store", store,
        )
        code, output = run_cli(*base)
        assert code == 0
        assert "store:" in output  # the cache tally is surfaced
        clear_warm_state()
        code, output = run_cli(*base, "--seed", "9", "--incremental")
        assert code == 0
        assert "stages 4/6 hit" in output

    def test_artifact_verb_lists_and_inspects(self, tmp_path):
        store = str(tmp_path / "store")
        code, _ = run_cli(
            "campaign", "--registers", "2", "--widths", "1", "--depths", "3",
            "--styles", "bypass", "--workers", "1",
            "--length", "24", "--max-faults", "1", "--store", store,
        )
        assert code == 0
        code, output = run_cli("artifact", "--store", store)
        assert code == 0
        assert "fam-r2w1d3s1-bypass" in output
        assert "+covers" in output
        artifact_file = next(
            str(p) for p in __import__("pathlib").Path(store).glob("artifact-*.bdd")
        )
        code, output = run_cli("artifact", "--file", artifact_file)
        assert code == 0
        payload = json.loads(output)
        assert payload["payload"]["kind"] == "derivation"

    def test_artifact_verb_clean_errors(self, tmp_path):
        code, _ = run_cli("artifact", "--store", str(tmp_path / "nope"))
        assert code == 2
        bad = tmp_path / "bad.bdd"
        bad.write_bytes(b"not an artifact")
        code, _ = run_cli("artifact", "--file", str(bad))
        assert code == 2
        code, output = run_cli("artifact", "--store", str(tmp_path))
        assert code == 0
        assert "no artifacts" in output


def test_stage_result_round_trip():
    stage = StageResult(name="derive", ok=True, seconds=0.25, details={"n": 3})
    assert StageResult.from_dict(stage.as_dict()).as_dict() == stage.as_dict()
