"""Tests for the textual specification format (repro.spec.textio)."""

import pytest

from repro.expr import FALSE, parse_expr
from repro.spec import (
    FunctionalSpec,
    SpecFormatError,
    StallClause,
    check_clause_equivalence,
    dumps_spec,
    load_spec_file,
    loads_spec,
    save_spec_file,
)

MINIMAL = """
# a two-stage single pipe
spec tiny

inputs:
    req gnt rtm

stage p.2.moe "completion":
    stall when req & !gnt

stage p.1.moe:
    stall when rtm & !p.2.moe
"""


class TestLoadsSpec:
    def test_minimal_spec_parses(self):
        spec = loads_spec(MINIMAL)
        assert spec.name == "tiny"
        assert spec.moe_flags() == ["p.2.moe", "p.1.moe"]
        assert spec.inputs == ["req", "gnt", "rtm"]
        assert spec.clause_for("p.2.moe").label == "completion"
        assert spec.condition_for("p.2.moe") == parse_expr("req & !gnt")

    def test_multiple_stall_when_lines_are_disjoined(self):
        spec = loads_spec(
            """
            spec multi
            inputs:
                a b c
            stage s.1.moe:
                stall when a
                stall when b & c
            """
        )
        assert spec.condition_for("s.1.moe") == parse_expr("a | b & c")

    def test_comments_and_blank_lines_ignored(self):
        spec = loads_spec(
            """
            # header comment
            spec commented   # not part of the name? no: comments strip first

            inputs:
                x    # trailing comment
            stage s.1.moe:
                stall when x  # stall comment
            """
        )
        assert spec.name == "commented"
        assert spec.inputs == ["x"]

    def test_stage_without_stalls_never_stalls(self):
        spec = loads_spec(
            """
            spec lazy
            inputs:
                a
            stage s.2.moe:
                stall when a
            stage s.1.moe:
            """
        )
        assert spec.condition_for("s.1.moe") == FALSE

    def test_missing_spec_line_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("inputs:\n  a\nstage s.1.moe:\n  stall when a\n")

    def test_duplicate_spec_line_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\nspec b\nstage s.1.moe:\n  stall when True\n")

    def test_stall_outside_stage_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\ninputs:\n  x\nstall when x\n")

    def test_unparsable_condition_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\ninputs:\n  x\nstage s.1.moe:\n  stall when x &&& y\n")

    def test_no_stages_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\ninputs:\n  x\n")

    def test_undeclared_signal_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\ninputs:\n  x\nstage s.1.moe:\n  stall when y\n")

    def test_gibberish_line_rejected(self):
        with pytest.raises(SpecFormatError):
            loads_spec("spec a\nwhat is this line\n")


class TestRoundTrip:
    def test_minimal_round_trip(self):
        spec = loads_spec(MINIMAL)
        again = loads_spec(dumps_spec(spec))
        assert again.name == spec.name
        assert again.moe_flags() == spec.moe_flags()
        assert again.inputs == spec.inputs
        for moe in spec.moe_flags():
            assert again.condition_for(moe) == spec.condition_for(moe)

    def test_example_architecture_round_trip(self, example_spec):
        again = loads_spec(dumps_spec(example_spec))
        assert again.moe_flags() == example_spec.moe_flags()
        assert check_clause_equivalence(again, example_spec).equivalent

    def test_firepath_round_trip(self, firepath_spec):
        again = loads_spec(dumps_spec(firepath_spec))
        assert again.moe_flags() == firepath_spec.moe_flags()
        assert check_clause_equivalence(again, firepath_spec).equivalent

    def test_never_stalling_stage_round_trips(self):
        spec = FunctionalSpec(
            name="lazy",
            clauses=[
                StallClause(moe="s.2.moe", condition=parse_expr("a")),
                StallClause(moe="s.1.moe", condition=FALSE),
            ],
            inputs=["a"],
        )
        again = loads_spec(dumps_spec(spec))
        assert again.condition_for("s.1.moe") == FALSE

    def test_labels_survive_round_trip(self):
        spec = loads_spec(MINIMAL)
        again = loads_spec(dumps_spec(spec))
        assert again.clause_for("p.2.moe").label == "completion"


class TestFileIo:
    def test_save_and_load_file(self, tmp_path, example_spec):
        path = tmp_path / "example.spec"
        save_spec_file(example_spec, str(path))
        loaded = load_spec_file(str(path))
        assert loaded.moe_flags() == example_spec.moe_flags()
        assert check_clause_equivalence(loaded, example_spec).equivalent

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_spec_file(str(tmp_path / "missing.spec"))
