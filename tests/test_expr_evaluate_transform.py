"""Tests for expression evaluation, substitution, NNF and simplification."""

import pytest

from repro.expr import (
    And,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    UnboundVariableError,
    Var,
    all_assignments,
    eliminate_derived,
    eval_expr,
    is_monotone_in,
    is_satisfiable_by_enumeration,
    is_tautology_by_enumeration,
    partial_eval,
    polarity_of_variables,
    rename,
    simplify,
    substitute,
    to_nnf,
    vars_,
)


class TestEvalExpr:
    def test_constants(self):
        assert eval_expr(TRUE, {}) is True
        assert eval_expr(FALSE, {}) is False

    def test_variable_lookup(self):
        assert eval_expr(Var("x"), {"x": True}) is True
        assert eval_expr(Var("x"), {"x": False}) is False

    def test_missing_variable_raises(self):
        with pytest.raises(UnboundVariableError):
            eval_expr(Var("x"), {})

    def test_connectives(self):
        a, b = vars_("a", "b")
        env = {"a": True, "b": False}
        assert eval_expr(Not(b), env)
        assert not eval_expr(And(a, b), env)
        assert eval_expr(Or(a, b), env)
        assert not eval_expr(Implies(a, b), env)
        assert eval_expr(Implies(b, a), env)
        assert not eval_expr(Iff(a, b), env)
        assert eval_expr(Ite(a, a, b), env)
        assert not eval_expr(Ite(b, a, b), env)

    def test_all_assignments_counts(self):
        assignments = list(all_assignments(["x", "y"]))
        assert len(assignments) == 4
        assert {frozenset(a.items()) for a in assignments} == {
            frozenset({("x", False), ("y", False)}),
            frozenset({("x", True), ("y", False)}),
            frozenset({("x", False), ("y", True)}),
            frozenset({("x", True), ("y", True)}),
        }

    def test_tautology_by_enumeration(self):
        a = Var("a")
        assert is_tautology_by_enumeration(Or(a, Not(a)))
        assert not is_tautology_by_enumeration(a)

    def test_satisfiable_by_enumeration(self):
        a = Var("a")
        assert is_satisfiable_by_enumeration(a)
        assert not is_satisfiable_by_enumeration(And(a, Not(a)))

    def test_enumeration_refuses_large_formulas(self):
        big = And(*[Var(f"x{i}") for i in range(30)])
        with pytest.raises(ValueError):
            is_tautology_by_enumeration(big, max_vars=10)


class TestPartialEval:
    def test_leaves_unbound_variables(self):
        a, b = vars_("a", "b")
        assert partial_eval(And(a, b), {"a": True}) == b
        assert partial_eval(And(a, b), {"a": False}) == FALSE

    def test_or_short_circuit(self):
        a, b = vars_("a", "b")
        assert partial_eval(Or(a, b), {"a": True}) == TRUE
        assert partial_eval(Or(a, b), {"a": False}) == b

    def test_implies_and_iff(self):
        a, b = vars_("a", "b")
        assert partial_eval(Implies(a, b), {"a": False}) == TRUE
        assert partial_eval(Implies(a, b), {"a": True}) == b
        assert partial_eval(Iff(a, b), {"a": True}) == b
        assert partial_eval(Iff(a, b), {"b": False}) == Not(a)

    def test_ite_condition_resolution(self):
        a, b, c = vars_("a", "b", "c")
        assert partial_eval(Ite(a, b, c), {"a": True}) == b
        assert partial_eval(Ite(a, b, c), {"a": False}) == c


class TestSubstitution:
    def test_substitute_expression(self):
        a, b, c = vars_("a", "b", "c")
        result = substitute(Implies(a, b), {"a": And(b, c)})
        assert result == Implies(And(b, c), b)

    def test_substitution_is_simultaneous(self):
        a, b = vars_("a", "b")
        result = substitute(And(a, b), {"a": b, "b": a})
        assert result == And(b, a)

    def test_substitute_accepts_bools(self):
        a, b = vars_("a", "b")
        assert substitute(And(a, b), {"a": True}) == And(TRUE, b)

    def test_rename(self):
        a, b = vars_("a", "b")
        assert rename(Or(a, Not(b)), {"a": "x", "b": "y"}) == Or(Var("x"), Not(Var("y")))


class TestNormalForms:
    def test_eliminate_derived_removes_implies_iff_ite(self):
        a, b, c = vars_("a", "b", "c")
        lowered = eliminate_derived(Iff(Implies(a, b), Ite(a, b, c)))
        names = {type(node).__name__ for node in lowered.walk()}
        assert names <= {"And", "Or", "Not", "Var", "Const"}

    def test_eliminate_derived_preserves_semantics(self):
        a, b, c = vars_("a", "b", "c")
        original = Iff(Implies(a, b), Ite(a, b, c))
        lowered = eliminate_derived(original)
        for assignment in all_assignments(["a", "b", "c"]):
            assert eval_expr(original, assignment) == eval_expr(lowered, assignment)

    def test_nnf_pushes_negation_to_leaves(self):
        a, b = vars_("a", "b")
        nnf = to_nnf(Not(And(a, Or(b, Not(a)))))
        for node in nnf.walk():
            if isinstance(node, Not):
                assert isinstance(node.operand, Var)

    def test_nnf_preserves_semantics(self):
        a, b, c = vars_("a", "b", "c")
        original = Not(Implies(And(a, b), Or(Not(c), a)))
        nnf = to_nnf(original)
        for assignment in all_assignments(["a", "b", "c"]):
            assert eval_expr(original, assignment) == eval_expr(nnf, assignment)


class TestSimplify:
    def test_double_negation(self):
        a = Var("a")
        assert simplify(Not(Not(a))) == a

    def test_constant_folding(self):
        a = Var("a")
        assert simplify(And(a, TRUE)) == a
        assert simplify(And(a, FALSE)) == FALSE
        assert simplify(Or(a, FALSE)) == a
        assert simplify(Or(a, TRUE)) == TRUE

    def test_idempotence(self):
        a = Var("a")
        assert simplify(And(a, a)) == a
        assert simplify(Or(a, a)) == a

    def test_complement_rules(self):
        a = Var("a")
        assert simplify(And(a, Not(a))) == FALSE
        assert simplify(Or(a, Not(a))) == TRUE

    def test_implication_simplifications(self):
        a, b = vars_("a", "b")
        assert simplify(Implies(TRUE, a)) == a
        assert simplify(Implies(FALSE, a)) == TRUE
        assert simplify(Implies(a, TRUE)) == TRUE
        assert simplify(Implies(a, FALSE)) == Not(a)
        assert simplify(Implies(a, a)) == TRUE

    def test_iff_simplifications(self):
        a = Var("a")
        assert simplify(Iff(a, a)) == TRUE
        assert simplify(Iff(a, TRUE)) == a
        assert simplify(Iff(a, FALSE)) == Not(a)

    def test_ite_simplifications(self):
        a, b, c = vars_("a", "b", "c")
        assert simplify(Ite(TRUE, b, c)) == b
        assert simplify(Ite(FALSE, b, c)) == c
        assert simplify(Ite(a, b, b)) == b

    def test_simplify_preserves_semantics(self):
        a, b, c = vars_("a", "b", "c")
        original = Or(And(a, Not(a)), Implies(And(b, TRUE), Or(c, FALSE)))
        simplified = simplify(original)
        for assignment in all_assignments(["a", "b", "c"]):
            assert eval_expr(original, assignment) == eval_expr(simplified, assignment)


class TestPolarity:
    def test_positive_and_negative_occurrences(self):
        a, b = vars_("a", "b")
        polarity = polarity_of_variables(And(a, Not(b)))
        assert polarity["a"] == (True, False)
        assert polarity["b"] == (False, True)

    def test_both_polarities(self):
        a = Var("a")
        polarity = polarity_of_variables(Or(a, Not(a)))
        assert polarity["a"] == (True, True)

    def test_implication_flips_antecedent_polarity(self):
        a, b = vars_("a", "b")
        polarity = polarity_of_variables(Implies(a, b))
        assert polarity["a"] == (False, True)
        assert polarity["b"] == (True, False)

    def test_is_monotone_in(self):
        moe, rtm = Var("moe"), Var("rtm")
        condition = And(rtm, Not(moe))
        # Monotone in rtm (appears positively) but not in moe (appears negated).
        assert is_monotone_in(condition, ["rtm"])
        assert not is_monotone_in(condition, ["moe"])
        assert is_monotone_in(condition, ["absent"])  # unused variables are fine
