"""Tests for VCD export of simulation traces (repro.pipeline.vcd)."""

import re

import pytest

from repro.pipeline import SimulationTrace, reference_interlock, simulate, trace_to_vcd, write_vcd_file
from repro.pipeline.vcd import _identifier_for
from repro.workloads import WorkloadGenerator, WorkloadProfile


@pytest.fixture(scope="module")
def small_trace(example_arch, example_spec):
    program = WorkloadGenerator(example_arch, seed=1).generate(WorkloadProfile(length=20))
    return simulate(example_arch, reference_interlock(example_spec), program)


@pytest.fixture(scope="module")
def vcd_text(small_trace):
    return trace_to_vcd(small_trace)


class TestIdentifierAllocation:
    def test_identifiers_are_unique(self):
        identifiers = [_identifier_for(i) for i in range(500)]
        assert len(set(identifiers)) == 500

    def test_identifiers_are_printable_and_short(self):
        for index in (0, 93, 94, 500, 5000):
            identifier = _identifier_for(index)
            assert identifier.isascii()
            assert " " not in identifier
            assert 1 <= len(identifier) <= 3

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            _identifier_for(-1)


class TestVcdStructure:
    def test_header_sections_present(self, vcd_text):
        for keyword in ("$date", "$version", "$timescale", "$enddefinitions", "$dumpvars"):
            assert keyword in vcd_text

    def test_scopes_present(self, vcd_text):
        assert "$scope module inputs $end" in vcd_text
        assert "$scope module moe $end" in vcd_text
        assert "$scope module occupancy $end" in vcd_text
        assert vcd_text.count("$scope") == vcd_text.count("$upscope")

    def test_one_var_per_signal(self, vcd_text, small_trace):
        first = small_trace.cycles[0]
        expected = len(first.inputs) + len(first.moe) + len(first.occupancy)
        assert vcd_text.count("$var wire 1 ") == expected

    def test_var_names_have_no_whitespace_or_brackets(self, vcd_text):
        for line in vcd_text.splitlines():
            if line.startswith("$var"):
                name = line.split()[4]
                assert "[" not in name and "]" not in name

    def test_timestamps_are_monotonic(self, vcd_text):
        stamps = [int(match) for match in re.findall(r"^#(\d+)$", vcd_text, re.MULTILINE)]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0

    def test_final_timestamp_extends_past_last_cycle(self, vcd_text, small_trace):
        stamps = [int(match) for match in re.findall(r"^#(\d+)$", vcd_text, re.MULTILINE)]
        assert stamps[-1] == small_trace.cycles[-1].cycle + 1

    def test_initial_dump_covers_every_signal(self, vcd_text, small_trace):
        first_block = vcd_text.split("$dumpvars")[1].split("$end")[0]
        changes = [line for line in first_block.strip().splitlines() if line]
        first = small_trace.cycles[0]
        assert len(changes) == len(first.inputs) + len(first.moe) + len(first.occupancy)

    def test_value_changes_use_binary_digits(self, vcd_text):
        body = vcd_text.split("$enddefinitions $end")[1]
        for line in body.strip().splitlines():
            if line.startswith("#") or line.startswith("$"):
                continue
            assert line[0] in "01"

    def test_occupancy_can_be_excluded(self, small_trace):
        text = trace_to_vcd(small_trace, include_occupancy=False)
        assert "$scope module occupancy $end" not in text

    def test_custom_timescale(self, small_trace):
        text = trace_to_vcd(small_trace, timescale="10 ps")
        assert "$timescale 10 ps $end" in text


class TestVcdChangeSemantics:
    def test_only_changes_after_first_cycle(self, vcd_text, small_trace):
        # Count value-change lines; they must not exceed signals × cycles and
        # must be fewer than a full dump every cycle (the trace stalls, so
        # most signals hold their value across at least one boundary).
        body = vcd_text.split("$enddefinitions $end")[1]
        change_lines = [
            line for line in body.strip().splitlines()
            if line and not line.startswith("#") and not line.startswith("$")
        ]
        first = small_trace.cycles[0]
        num_signals = len(first.inputs) + len(first.moe) + len(first.occupancy)
        assert len(change_lines) <= num_signals * small_trace.num_cycles()
        assert len(change_lines) < num_signals * small_trace.num_cycles()


class TestFileOutput:
    def test_write_vcd_file(self, tmp_path, small_trace):
        path = tmp_path / "trace.vcd"
        write_vcd_file(small_trace, str(path))
        content = path.read_text(encoding="ascii")
        assert "$enddefinitions $end" in content

    def test_empty_trace_rejected(self):
        empty = SimulationTrace(architecture_name="none", interlock_name="none")
        with pytest.raises(ValueError):
            trace_to_vcd(empty)
