"""Tests for the command-line front end (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, main
from repro.spec import loads_spec


def run_cli(*argv):
    """Invoke the CLI, returning (exit_code, captured_stdout)."""
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


SPEC_TEXT = """
spec cli-test
inputs:
    req gnt rtm
stage p.2.moe:
    stall when req & !gnt
stage p.1.moe:
    stall when rtm & !p.2.moe
"""


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "cli-test.spec"
    path.write_text(SPEC_TEXT, encoding="utf-8")
    return str(path)


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        actions = [a for a in parser._subparsers._group_actions][0]
        commands = set(actions.choices)
        assert {
            "list-archs", "show-arch", "spec", "derive", "check-properties",
            "assertions", "synth", "check", "simulate",
        } <= commands

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestArchitectureCommands:
    def test_list_archs(self):
        code, output = run_cli("list-archs")
        assert code == 0
        assert "dac2002-example" in output
        assert "firepath-like" in output
        assert "risc5" in output

    def test_show_arch(self):
        code, output = run_cli("show-arch", "--arch", "dac2002-example")
        assert code == 0
        assert "long" in output and "short" in output


class TestSpecCommands:
    def test_functional_spec_text(self):
        code, output = run_cli("spec", "--arch", "risc5")
        assert code == 0
        assert "->" in output

    def test_performance_spec(self):
        code, output = run_cli("spec", "--arch", "risc5", "--kind", "performance")
        assert code == 0
        assert "->" in output

    def test_combined_spec_unicode(self):
        code, output = run_cli(
            "spec", "--arch", "risc5", "--kind", "combined", "--format", "unicode"
        )
        assert code == 0
        assert "↔" in output

    def test_specfile_export_round_trips(self):
        code, output = run_cli("spec", "--arch", "risc5", "--format", "specfile")
        assert code == 0
        spec = loads_spec(output)
        assert spec.name == "risc5"

    def test_specfile_export_of_performance_spec_rejected(self):
        code, _ = run_cli(
            "spec", "--arch", "risc5", "--kind", "performance", "--format", "specfile"
        )
        assert code == 2

    def test_spec_from_file(self, spec_file):
        code, output = run_cli("spec", "--spec-file", spec_file)
        assert code == 0
        assert "p.2.moe" in output

    def test_derive_prints_closed_forms(self, spec_file):
        code, output = run_cli("derive", "--spec-file", spec_file)
        assert code == 0
        assert "p.1.moe =" in output

    def test_check_properties_pass(self, spec_file):
        code, output = run_cli("check-properties", "--spec-file", spec_file)
        assert code == 0
        assert "holds" in output or "passed" in output or "ok" in output.lower()

    def test_missing_spec_file_reports_error(self, tmp_path):
        code, _ = run_cli("spec", "--spec-file", str(tmp_path / "nope.spec"))
        assert code == 2


class TestGenerationCommands:
    def test_sva_assertions(self, spec_file):
        code, output = run_cli("assertions", "--spec-file", spec_file)
        assert code == 0
        assert "assert property" in output
        assert "module pipeline_spec_checker" in output

    def test_psl_assertions(self, spec_file):
        code, output = run_cli("assertions", "--spec-file", spec_file, "--language", "psl")
        assert code == 0
        assert "vunit" in output

    def test_behavioural_verilog(self, spec_file):
        code, output = run_cli("synth", "--spec-file", spec_file)
        assert code == 0
        assert "module" in output and "assign" in output

    def test_netlist_vhdl(self, spec_file):
        code, output = run_cli(
            "synth", "--spec-file", spec_file, "--language", "vhdl", "--style", "netlist"
        )
        assert code == 0
        assert "architecture netlist" in output

    def test_optimized_behavioural_vhdl(self, spec_file):
        code, output = run_cli(
            "synth", "--spec-file", spec_file, "--language", "vhdl", "--optimize"
        )
        assert code == 0
        assert "architecture rtl" in output


class TestCheckAndSimulate:
    def test_check_derived_interlock_passes(self, spec_file):
        code, output = run_cli("check", "--spec-file", spec_file, "--backend", "sat")
        assert code == 0
        assert "proved" in output

    def test_check_conservative_variant_of_example(self):
        code, output = run_cli(
            "check", "--arch", "dac2002-example", "--implementation", "conservative"
        )
        # The conservative variant is functionally safe but not maximum
        # performance, so the command reports failures and exits non-zero.
        assert code == 1
        assert "FAILED" in output

    def test_conservative_requires_architecture(self, spec_file):
        code, _ = run_cli(
            "check", "--spec-file", spec_file, "--implementation", "conservative"
        )
        assert code == 2

    def test_simulate_risc5(self, tmp_path):
        vcd_path = tmp_path / "run.vcd"
        code, output = run_cli(
            "simulate", "--arch", "risc5", "--length", "20", "--seed", "3",
            "--coverage", "--vcd", str(vcd_path),
        )
        assert code == 0
        assert "Assertion monitor report" in output
        assert "coverage" in output.lower()
        assert vcd_path.exists()
