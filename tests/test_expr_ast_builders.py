"""Tests for the expression AST and the convenience builders."""

import pytest

from repro.expr import (
    And,
    Const,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    Var,
    at_most_one,
    big_and,
    big_or,
    bit_vector,
    coerce,
    eval_expr,
    exactly_one,
    nand,
    nor,
    var,
    variables_of,
    vars_,
)


class TestConstructors:
    def test_var_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_var_requires_string(self):
        with pytest.raises(ValueError):
            Var(3)

    def test_const_identity(self):
        assert TRUE == Const(True)
        assert FALSE == Const(False)
        assert TRUE != FALSE

    def test_vars_returns_tuple_of_vars(self):
        a, b, c = vars_("a", "b", "c")
        assert a == Var("a") and b == Var("b") and c == Var("c")

    def test_var_helper(self):
        assert var("x") == Var("x")

    def test_coerce_bool_and_string(self):
        assert coerce(True) == TRUE
        assert coerce(False) == FALSE
        assert coerce("sig") == Var("sig")

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce(3.14)

    def test_expr_has_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(Var("a"))


class TestOperatorOverloads:
    def test_and_operator(self):
        a, b = vars_("a", "b")
        assert (a & b) == And(a, b)

    def test_or_operator(self):
        a, b = vars_("a", "b")
        assert (a | b) == Or(a, b)

    def test_invert_operator(self):
        a = Var("a")
        assert ~a == Not(a)

    def test_xor_expands_to_disjunction_of_conjunctions(self):
        a, b = vars_("a", "b")
        xor = a ^ b
        assert eval_expr(xor, {"a": True, "b": False})
        assert eval_expr(xor, {"a": False, "b": True})
        assert not eval_expr(xor, {"a": True, "b": True})
        assert not eval_expr(xor, {"a": False, "b": False})

    def test_implies_and_iff_methods(self):
        a, b = vars_("a", "b")
        assert a.implies(b) == Implies(a, b)
        assert a.iff(b) == Iff(a, b)

    def test_ite_method(self):
        a, b, c = vars_("a", "b", "c")
        assert a.ite(b, c) == Ite(a, b, c)

    def test_operators_coerce_strings(self):
        a = Var("a")
        assert (a & "b") == And(a, Var("b"))
        assert ("b" | a) == Or(Var("b"), a)


class TestStructure:
    def test_nary_flattening(self):
        a, b, c = vars_("a", "b", "c")
        assert And(And(a, b), c) == And(a, b, c)
        assert Or(a, Or(b, c)) == Or(a, b, c)

    def test_nary_requires_operands(self):
        with pytest.raises(ValueError):
            And()

    def test_children(self):
        a, b = vars_("a", "b")
        assert Not(a).children() == (a,)
        assert Implies(a, b).children() == (a, b)
        assert Iff(a, b).children() == (a, b)
        assert Ite(a, b, a).children() == (a, b, a)
        assert a.children() == ()

    def test_variables(self):
        a, b, c = vars_("a", "b", "c")
        expr = (a & ~b) | (c.implies(a))
        assert expr.variables() == frozenset({"a", "b", "c"})

    def test_variables_of_many(self):
        a, b = vars_("a", "b")
        assert variables_of([a, ~b]) == frozenset({"a", "b"})

    def test_size_and_depth(self):
        a, b = vars_("a", "b")
        expr = And(a, Not(b))
        assert expr.size() == 4
        assert expr.depth() == 3
        assert a.size() == 1 and a.depth() == 1

    def test_walk_visits_every_node(self):
        a, b = vars_("a", "b")
        expr = Or(And(a, b), Not(a))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Var") == 3
        assert "And" in kinds and "Or" in kinds and "Not" in kinds

    def test_equality_and_hash(self):
        a, b = vars_("a", "b")
        assert And(a, b) == And(a, b)
        assert hash(And(a, b)) == hash(And(a, b))
        assert And(a, b) != And(b, a)  # order-sensitive structural equality
        assert len({And(a, b), And(a, b), Or(a, b)}) == 2

    def test_immutability(self):
        a = Var("a")
        with pytest.raises(AttributeError):
            a.name = "b"
        with pytest.raises(AttributeError):
            Not(a).operand = a
        with pytest.raises(AttributeError):
            And(a, a).operands = ()


class TestBuilders:
    def test_big_and_empty_is_true(self):
        assert big_and([]) == TRUE

    def test_big_or_empty_is_false(self):
        assert big_or([]) == FALSE

    def test_big_and_single_passthrough(self):
        a = Var("a")
        assert big_and([a]) is a

    def test_big_and_many(self):
        a, b, c = vars_("a", "b", "c")
        assert big_and([a, b, c]) == And(a, b, c)

    def test_big_or_many(self):
        a, b, c = vars_("a", "b", "c")
        assert big_or([a, b, c]) == Or(a, b, c)

    def test_nand_nor(self):
        a, b = vars_("a", "b")
        assert eval_expr(nand(a, b), {"a": True, "b": True}) is False
        assert eval_expr(nand(a, b), {"a": True, "b": False}) is True
        assert eval_expr(nor(a, b), {"a": False, "b": False}) is True
        assert eval_expr(nor(a, b), {"a": True, "b": False}) is False

    def test_at_most_one(self):
        a, b, c = vars_("a", "b", "c")
        constraint = at_most_one([a, b, c])
        assert eval_expr(constraint, {"a": True, "b": False, "c": False})
        assert eval_expr(constraint, {"a": False, "b": False, "c": False})
        assert not eval_expr(constraint, {"a": True, "b": True, "c": False})

    def test_exactly_one(self):
        a, b = vars_("a", "b")
        constraint = exactly_one([a, b])
        assert eval_expr(constraint, {"a": True, "b": False})
        assert not eval_expr(constraint, {"a": False, "b": False})
        assert not eval_expr(constraint, {"a": True, "b": True})

    def test_bit_vector_names(self):
        bits = bit_vector("scb", 4)
        assert [bit.name for bit in bits] == ["scb[0]", "scb[1]", "scb[2]", "scb[3]"]

    def test_bit_vector_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            bit_vector("scb", 0)
