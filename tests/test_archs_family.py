"""Tests for the architecture library and the parametric family generator."""

import pytest

from repro.archs import (
    FamilyConfig,
    FamilyError,
    SHOWCASE_CONFIGS,
    available_architectures,
    generate_family,
    load_architecture,
    register_architecture,
    unregister_architecture,
)
from repro.pipeline.structure import Architecture
from repro.spec import (
    build_functional_spec,
    check_all_properties,
    most_liberal_is_maximal,
    symbolic_most_liberal,
)


class TestLibrary:
    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(KeyError) as excinfo:
            load_architecture("no-such-architecture")
        message = str(excinfo.value)
        assert "no-such-architecture" in message
        assert "dac2002-example" in message
        assert "fam-r<registers>" in message

    def test_malformed_family_name_raises(self):
        with pytest.raises(KeyError) as excinfo:
            load_architecture("fam-bogus")
        assert "malformed family architecture name" in str(excinfo.value)

    def test_every_registered_factory_instantiates(self):
        names = available_architectures()
        assert len(names) >= 6  # three hand-written + the showcase members
        for name in names:
            architecture = load_architecture(name)
            assert isinstance(architecture, Architecture)
            assert architecture.pipes

    def test_showcase_members_are_listed(self):
        names = available_architectures()
        for config in SHOWCASE_CONFIGS:
            assert config.name in names

    def test_register_and_unregister(self):
        name = "test-registered-arch"
        register_architecture(name, lambda: load_architecture("risc5"))
        try:
            assert name in available_architectures()
            assert isinstance(load_architecture(name), Architecture)
            with pytest.raises(ValueError):
                register_architecture(name, lambda: load_architecture("risc5"))
        finally:
            unregister_architecture(name)
        assert name not in available_architectures()
        with pytest.raises(KeyError):
            unregister_architecture(name)

    def test_family_prefix_is_reserved(self):
        with pytest.raises(ValueError):
            register_architecture(
                "fam-r2w1d3s1-bypass", lambda: load_architecture("risc5")
            )


class TestFamilyConfig:
    def test_name_round_trip(self):
        for config in generate_family(
            registers=(2, 4),
            widths=(1, 2),
            depths=(3, 5),
            styles=("bypass", "blocking"),
            loadstore=(False, True),
            waits=(False, True),
        ):
            assert FamilyConfig.from_name(config.name) == config

    def test_dict_round_trip(self):
        config = FamilyConfig(
            num_registers=8,
            issue_width=3,
            depth=6,
            scoreboard_style="blocking",
            with_loadstore=True,
            with_wait=True,
        )
        assert FamilyConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FamilyError):
            FamilyConfig.from_dict({"num_registers": 2, "turbo": True})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FamilyError):
            FamilyConfig(num_registers=0)
        with pytest.raises(FamilyError):
            FamilyConfig(depth=1)
        with pytest.raises(FamilyError):
            FamilyConfig(scoreboard_style="psychic")

    def test_pipe_depths_staggered_and_floored(self):
        config = FamilyConfig(issue_width=4, depth=5, latency_step=2)
        assert config.pipe_depths() == [5, 3, 2, 2]

    def test_build_structure(self):
        config = FamilyConfig(
            num_registers=4,
            issue_width=2,
            depth=4,
            scoreboard_style="bypass",
            with_loadstore=True,
            with_wait=True,
        )
        architecture = config.build()
        assert architecture.name == config.name
        assert len(architecture.pipes) == 3  # two execution pipes + load/store
        # Shallower pipe wins arbitration, as in the paper.
        assert architecture.buses[0].priority == ("p1", "p0")
        # The load/store pipe never competes for the completion bus.
        assert architecture.pipe("ls").completion_bus is None
        assert architecture.scoreboard.bypass_buses == ("c",)
        assert architecture.lockstep_groups == [("p0", "p1", "ls")]
        assert architecture.wait_signals_for("p0") == ["op_is_WAIT"]

    def test_blocking_scoreboard_has_no_bypass(self):
        architecture = FamilyConfig(scoreboard_style="blocking").build()
        assert architecture.scoreboard.bypass_buses == ()


class TestFamilyGeneration:
    def test_default_grid_size_and_uniqueness(self):
        configs = generate_family()
        names = [config.name for config in configs]
        assert len(configs) == 24
        assert len(set(names)) == len(names)

    def test_width_one_latency_step_collisions_deduplicated(self):
        configs = generate_family(
            registers=(2,),
            widths=(1,),
            depths=(3,),
            latency_steps=(0, 1, 2),
            styles=("bypass",),
        )
        # latency_step is irrelevant at width 1: the three parameter
        # tuples build identical machines, so only one member survives.
        assert len(configs) == 1
        assert configs[0].latency_step == 0

    def test_structurally_distinct_steps_are_kept(self):
        configs = generate_family(
            registers=(2,),
            widths=(2,),
            depths=(4,),
            latency_steps=(0, 1, 2),
            styles=("bypass",),
        )
        # At width 2 each step yields different pipe depths: [4,4]/[4,3]/[4,2].
        assert len(configs) == 3

    def test_generated_configs_derive_and_satisfy_property_3(self):
        # A structurally diverse small slice of the family: both styles,
        # both widths, with and without the load/store pipe.
        configs = [
            FamilyConfig(num_registers=2, issue_width=1, depth=3, scoreboard_style="bypass"),
            FamilyConfig(num_registers=2, issue_width=2, depth=3, scoreboard_style="blocking"),
            FamilyConfig(
                num_registers=2,
                issue_width=2,
                depth=4,
                scoreboard_style="bypass",
                with_loadstore=True,
                with_wait=True,
            ),
        ]
        for config in configs:
            spec = build_functional_spec(config.build())
            report = check_all_properties(spec)
            assert report.all_hold(), f"{config.name}:\n{report.describe()}"
            derivation = symbolic_most_liberal(spec)
            assert most_liberal_is_maximal(spec, derivation), config.name
