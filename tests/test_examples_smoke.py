"""Smoke tests: every script under examples/ must import and run.

Each example is executed through its ``main()`` entry point with
quickstart-sized keyword arguments (where the script accepts them) so the
whole directory finishes in seconds.  This keeps the examples honest during
refactors: an API they use cannot be changed or removed without this file
noticing.
"""

import contextlib
import inspect
import io
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# Shrunk keyword arguments per script (only those its main() accepts are
# passed), keeping every run at smoke-test size.
QUICK_ARGS = {
    "quickstart.py": {"num_registers": 2},
    "firepath_verification.py": {
        "num_registers": 2,
        "num_programs": 1,
        "program_length": 16,
        "max_cycles": 300,
    },
    "service_client.py": {
        "arch": "fam-r2w1d3s1-bypass",
        "stages": "properties,derive",
    },
}

EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """A new example script must be added to this smoke suite."""
    assert EXAMPLE_SCRIPTS, "examples directory is empty?"
    unknown = set(QUICK_ARGS) - set(EXAMPLE_SCRIPTS)
    assert not unknown, f"QUICK_ARGS names missing scripts: {sorted(unknown)}"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script):
    # Import without triggering the __main__ guard, then call main() with
    # whatever quick arguments its signature accepts.
    namespace = runpy.run_path(str(EXAMPLES_DIR / script))
    main = namespace.get("main")
    assert callable(main), f"{script} has no main() entry point"
    accepted = inspect.signature(main).parameters
    kwargs = {
        name: value
        for name, value in QUICK_ARGS.get(script, {}).items()
        if name in accepted
    }
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        main(**kwargs)
    assert stdout.getvalue().strip(), f"{script} produced no output"
