"""Tests for synthesis optimisation (repro.synth.optimize) and VHDL emission (repro.synth.vhdl)."""

import pytest

from repro.bdd import ExprBddContext
from repro.expr import Iff, Var, parse_expr
from repro.spec import FunctionalSpec, StallClause, symbolic_most_liberal
from repro.synth import (
    OptimizationError,
    behavioural_vhdl,
    module_to_vhdl,
    optimize_derivation,
    synthesis_to_vhdl,
    synthesize_interlock,
)


@pytest.fixture(scope="module")
def redundant_spec():
    """A small spec whose stall conditions carry removable redundancy."""
    return FunctionalSpec(
        name="redundant",
        clauses=[
            StallClause(moe="p.2.moe", condition=parse_expr("req & !gnt | req & !gnt & rtm")),
            StallClause(
                moe="p.1.moe",
                condition=parse_expr("rtm & !p.2.moe | rtm & !p.2.moe & wait | wait"),
            ),
        ],
        inputs=["req", "gnt", "rtm", "wait"],
    )


class TestOptimizeDerivation:
    def test_redundant_terms_are_removed(self, redundant_spec):
        # The legacy expression backend carries the substitution residue the
        # optimiser exists to clean up; the default BDD backend already
        # materializes minimized ISOP covers (asserted below).
        derivation = symbolic_most_liberal(redundant_spec, backend="expr")
        report = optimize_derivation(redundant_spec, derivation)
        assert report.total_literals_after() <= report.total_literals_before()
        # The absorbed/duplicated terms must actually disappear.
        assert report.total_literals_after() < report.total_literals_before()

    def test_bdd_backend_output_is_already_minimal(self, redundant_spec):
        derivation = symbolic_most_liberal(redundant_spec)
        report = optimize_derivation(redundant_spec, derivation)
        assert report.total_literals_after() == report.total_literals_before()

    def test_optimized_equations_are_equivalent(self, redundant_spec):
        derivation = symbolic_most_liberal(redundant_spec)
        report = optimize_derivation(redundant_spec, derivation)
        context = ExprBddContext()
        for moe, original in derivation.moe_expressions.items():
            optimized = report.derivation.moe_expressions[moe]
            assert context.is_valid(Iff(original, optimized))

    def test_example_architecture_equations_stay_equivalent(self, example_spec, example_derivation):
        report = optimize_derivation(example_spec, example_derivation)
        context = ExprBddContext()
        for moe, original in example_derivation.moe_expressions.items():
            assert context.is_valid(Iff(original, report.derivation.moe_expressions[moe]))
        assert report.total_literals_after() <= report.total_literals_before()

    def test_care_set_allows_extra_reduction(self):
        spec = FunctionalSpec(
            name="care",
            clauses=[StallClause(moe="p.1.moe", condition=parse_expr("req & busy"))],
            inputs=["req", "busy"],
        )
        derivation = symbolic_most_liberal(spec)
        unconstrained = optimize_derivation(spec, derivation)
        constrained = optimize_derivation(spec, derivation, care=Var("busy"))
        assert constrained.total_literals_after() <= unconstrained.total_literals_after()

    def test_report_rows_have_expected_columns(self, redundant_spec):
        derivation = symbolic_most_liberal(redundant_spec)
        rows = optimize_derivation(redundant_spec, derivation).rows()
        assert {"moe flag", "method", "literals before", "literals after", "reduction"} <= set(rows[0])
        assert len(rows) == len(redundant_spec.moe_flags())

    def test_optimized_netlist_still_matches_derived_interlock(self, redundant_spec):
        derivation = symbolic_most_liberal(redundant_spec)
        report = optimize_derivation(redundant_spec, derivation)
        plain = synthesize_interlock(redundant_spec, derivation=derivation)
        optimized = synthesize_interlock(redundant_spec, derivation=report.derivation)
        assert optimized.gate_count() <= plain.gate_count()
        # Both netlists compute the same function on a few sample inputs.
        for valuation in (
            {"req": True, "gnt": False, "rtm": True, "wait": False},
            {"req": False, "gnt": False, "rtm": True, "wait": True},
            {"req": True, "gnt": True, "rtm": False, "wait": False},
        ):
            assert plain.interlock().compute_moe(valuation) == optimized.interlock().compute_moe(valuation)


class TestVhdlEmission:
    def test_behavioural_vhdl_structure(self, example_spec, example_derivation):
        text = behavioural_vhdl(example_spec, example_derivation, entity_name="dut")
        assert "library ieee;" in text
        assert "entity dut is" in text
        assert "architecture rtl of dut is" in text
        assert text.count("<=") == len(example_spec.moe_flags())
        # Every moe flag appears as an output port.
        for moe in example_spec.moe_flags():
            assert moe.replace(".", "_") in text

    def test_netlist_vhdl_structure(self, example_spec):
        synthesis = synthesize_interlock(example_spec, module_name="netlist_dut")
        text = synthesis_to_vhdl(synthesis)
        assert "entity netlist_dut is" in text
        assert "architecture netlist of netlist_dut is" in text
        # One signal declaration per internal wire and one assignment per gate.
        assert text.count("signal ") == len(synthesis.module.wires)
        assert text.count("<=") == synthesis.module.gate_count()

    def test_vhdl_ports_have_no_trailing_semicolon_before_close(self, example_spec):
        synthesis = synthesize_interlock(example_spec)
        text = module_to_vhdl(synthesis.module)
        for previous, line in zip(text.splitlines(), text.splitlines()[1:]):
            if line.strip() == ");":
                assert not previous.split("--")[0].rstrip().endswith(";")

    def test_behavioural_and_netlist_share_port_names(self, example_spec, example_derivation):
        synthesis = synthesize_interlock(example_spec, derivation=example_derivation)
        behavioural = behavioural_vhdl(example_spec, example_derivation, entity_name="x")
        for port in synthesis.module.port_names():
            assert port in behavioural

    def test_synthesis_to_vhdl_behavioural_flag(self, example_spec):
        synthesis = synthesize_interlock(example_spec)
        behavioural = synthesis_to_vhdl(synthesis, behavioural=True)
        structural = synthesis_to_vhdl(synthesis, behavioural=False)
        assert "architecture rtl" in behavioural
        assert "architecture netlist" in structural
