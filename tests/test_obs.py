"""Tests for the observability layer (repro.obs) and its surfacing.

Covers the span tracer (nesting, attributes, the no-op fast path), the
metrics registry (counters/gauges/histograms, worker delta fold-up, both
wire renderings), the campaign integration (one correlation id across the
parent and real forked workers, NDJSON traces in the result store), the
``/v1/metrics`` endpoint over a live daemon socket, and the ``repro
trace`` CLI verb.
"""

import io
import json
import os
import re
import time

import pytest

from repro.campaign import JobSpec, ResultStore, family_sweep, run_campaign
from repro.campaign.runner import run_traced_job
from repro.cli import main as cli_main
from repro.obs import (
    KernelWatch,
    MetricsRegistry,
    Tracer,
    annotate,
    current_trace_id,
    dump_ndjson,
    get_registry,
    load_ndjson,
    record_kernel_stats,
    render_rollup,
    render_waterfall,
    rollup_spans,
    span,
    tracing_enabled,
)
from repro.obs.trace import _NULL_SPAN

ARCH = "fam-r2w1d3s1-bypass"
ARCH2 = "fam-r2w1d3s1-blocking"
LIGHT_STAGES = ("properties", "derive")


def light_job(arch=ARCH, stages=LIGHT_STAGES):
    return JobSpec(arch=arch, stages=stages, workload_length=24, max_faults=2)


def light_sweep(workers=1):
    return family_sweep(
        name="obs-test",
        registers=(2,),
        widths=(1,),
        depths=(3,),
        styles=("bypass", "blocking"),
        workers=workers,
        stages=LIGHT_STAGES,
        workload_length=24,
        max_faults=2,
    )


# -- the tracer ---------------------------------------------------------------------


class TestSpans:
    def test_nesting_attrs_and_parent_links(self):
        tracer = Tracer()
        with tracer.activate():
            with span("outer", arch="x") as outer:
                outer.annotate(extra=1)
                with span("inner"):
                    annotate(deep=True)
        outer_rec, inner_rec = tracer.spans[-1], tracer.spans[0]
        assert outer_rec["name"] == "outer"
        assert outer_rec["attrs"] == {"arch": "x", "extra": 1}
        assert inner_rec["name"] == "inner"
        assert inner_rec["attrs"] == {"deep": True}
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["trace"] == inner_rec["trace"] == tracer.trace_id
        assert outer_rec["pid"] == os.getpid()
        assert outer_rec["seconds"] >= inner_rec["seconds"] >= 0.0
        assert outer_rec["ok"] and inner_rec["ok"]

    def test_exception_marks_span_not_ok_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.activate():
                with span("doomed"):
                    raise ValueError("boom")
        assert tracer.spans[0]["ok"] is False

    def test_sibling_span_ids_are_distinct_across_tracers(self):
        a, b = Tracer(), Tracer()
        with a.activate():
            with span("one"):
                pass
        with b.activate():
            with span("two"):
                pass
        assert a.spans[0]["id"] != b.spans[0]["id"]

    def test_root_parent_threads_through(self):
        tracer = Tracer(trace_id="t-fixed", root_parent="campaign-7")
        with tracer.activate():
            with span("job"):
                pass
        assert tracer.spans[0]["trace"] == "t-fixed"
        assert tracer.spans[0]["parent"] == "campaign-7"

    def test_current_trace_id_tracks_activation(self):
        assert current_trace_id() is None
        tracer = Tracer()
        with tracer.activate():
            assert current_trace_id() == tracer.trace_id
        assert current_trace_id() is None

    def test_attr_named_name_does_not_collide(self):
        tracer = Tracer()
        with tracer.activate():
            with span("campaign", name="sweep"):
                pass
        assert tracer.spans[0]["attrs"] == {"name": "sweep"}

    def test_rollup_spans(self):
        tracer = Tracer()
        with tracer.activate():
            for _ in range(3):
                with span("stage"):
                    pass
        rollups = rollup_spans(tracer.spans)
        assert rollups["stage"]["count"] == 3
        assert rollups["stage"]["seconds_total"] >= rollups["stage"]["seconds_max"]


class TestNoOpMode:
    def test_span_without_tracer_is_shared_noop(self):
        first = span("anything", attr=1)
        second = span("else")
        assert first is second is _NULL_SPAN
        with first as live:
            live.annotate(ignored=True)  # must not raise

    def test_annotate_without_tracer_is_noop(self):
        annotate(ignored=True)

    def test_tracing_enabled_reads_env_late(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_enabled()

    def test_noop_span_overhead_is_negligible(self):
        # The off-by-default guarantee: with no active tracer a span is
        # one thread-local lookup.  100k enter/exit pairs in well under a
        # second leaves ~10x headroom over observed cost even on a
        # loaded CI box.
        start = time.perf_counter()
        for _ in range(100_000):
            with span("hot"):
                pass
        assert time.perf_counter() - start < 1.0


class TestNdjson:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.activate():
            with span("a", k="v"):
                pass
        text = dump_ndjson(tracer.spans)
        assert text.endswith("\n")
        assert load_ndjson(text) == tracer.spans

    def test_load_error_names_the_line(self):
        with pytest.raises(ValueError, match="line 2"):
            load_ndjson('{"ok": 1}\n{broken\n')


# -- the metrics registry -----------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("repro_campaign_runs_total")
        reg.inc("repro_campaign_jobs_total", 2, outcome="ok")
        reg.set_gauge("repro_service_queue_depth", 3)
        reg.observe("repro_job_seconds", 0.05)
        reg.observe("repro_job_seconds", 10.0)
        samples = {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry
            for entry in reg.samples()
        }
        assert samples[("repro_campaign_runs_total", ())]["value"] == 1
        assert samples[("repro_campaign_jobs_total", (("outcome", "ok"),))][
            "value"
        ] == 2
        assert samples[("repro_service_queue_depth", ())]["value"] == 3
        histogram = samples[("repro_job_seconds", ())]
        assert histogram["count"] == 2
        assert sum(histogram["counts"]) == 2
        assert histogram["sum"] == pytest.approx(10.05)

    def test_prometheus_wire_format_parses(self):
        reg = MetricsRegistry()
        reg.inc("repro_campaign_jobs_total", outcome="ok")
        reg.set_gauge("repro_kernel_load_factor", 0.25)
        reg.observe("repro_stage_seconds", 0.002, stage="derive")
        text = reg.render_prometheus()
        assert text.endswith("\n")
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"'
            r'(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9][0-9.e+-]*$'
        )
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, mtype = line.split(" ")
                seen_types[name] = mtype
                continue
            assert sample_re.match(line), line
            base = line.split("{")[0].split(" ")[0]
            stripped = re.sub(r"_(bucket|sum|count)$", "", base)
            assert base in seen_types or stripped in seen_types, line
        assert seen_types["repro_campaign_jobs_total"] == "counter"
        assert seen_types["repro_kernel_load_factor"] == "gauge"
        assert seen_types["repro_stage_seconds"] == "histogram"
        # Histograms render cumulative buckets plus the +Inf catch-all.
        assert 'repro_stage_seconds_bucket{le="+Inf",stage="derive"} 1' in text
        assert 'repro_stage_seconds_count{stage="derive"} 1' in text

    def test_fold_from_two_workers(self):
        parent = MetricsRegistry()
        parent.inc("repro_campaign_runs_total")
        deltas = []
        for seconds in (0.01, 0.3):
            worker = MetricsRegistry()
            before = worker.snapshot()
            worker.inc("repro_kernel_gc_runs_total", 2)
            worker.observe("repro_job_seconds", seconds)
            worker.set_gauge("repro_kernel_live_nodes", 123)
            deltas.append(worker.delta_since(before))
        for delta in deltas:
            assert "repro_kernel_live_nodes" not in delta.get("counters", {})
            parent.fold(delta)
        samples = {
            entry["name"]: entry
            for entry in parent.samples()
            if not entry["labels"]
        }
        assert samples["repro_kernel_gc_runs_total"]["value"] == 4
        assert samples["repro_job_seconds"]["count"] == 2
        assert samples["repro_job_seconds"]["sum"] == pytest.approx(0.31)
        # Gauges are point-in-time readings and never travel.
        assert "repro_kernel_live_nodes" not in samples

    def test_delta_since_drops_zero_entries(self):
        reg = MetricsRegistry()
        reg.inc("repro_campaign_runs_total")
        before = reg.snapshot()
        delta = reg.delta_since(before)
        assert delta == {"counters": {}, "histograms": {}}

    def test_kernel_watch_and_record(self, example_derivation):
        manager = example_derivation.context.manager
        watch = KernelWatch(manager)
        delta = watch.delta()
        assert delta["cache_hits"] == delta["cache_misses"] == 0
        assert delta["live_nodes"] >= 0
        reg = MetricsRegistry()
        record_kernel_stats({"gc_runs": 3, "live_nodes": 42}, registry=reg)
        samples = {entry["name"]: entry for entry in reg.samples()}
        assert samples["repro_kernel_gc_runs_total"]["value"] == 3
        assert samples["repro_kernel_live_nodes"]["value"] == 42


# -- campaign integration -----------------------------------------------------------


class TestCampaignTracing:
    def test_traced_job_propagates_correlation(self):
        result = run_traced_job(
            light_job(stages=("properties",)),
            trace={"id": "t-fixed", "parent": "parent-1"},
        )
        assert result.ok
        assert result.trace_spans
        assert {rec["trace"] for rec in result.trace_spans} == {"t-fixed"}
        job_spans = [r for r in result.trace_spans if r["name"] == "job"]
        assert len(job_spans) == 1
        assert job_spans[0]["parent"] == "parent-1"
        stage_spans = [r for r in result.trace_spans if r["name"] == "properties"]
        assert stage_spans and stage_spans[0]["parent"] == job_spans[0]["id"]

    def test_untraced_job_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        result = run_traced_job(light_job(stages=("properties",)), trace=None)
        assert result.ok
        assert result.trace_spans is None

    def test_fork_pool_campaign_single_trace_id(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = light_sweep(workers=2)
        assert len(spec.jobs) == 2
        report = run_campaign(spec, store=store, trace=True)
        assert report.all_ok()
        assert report.trace is not None
        trace_id = report.trace["trace_id"]

        keys = store.trace_keys()
        assert len(keys) == 2
        spans = []
        for key in keys:
            spans.extend(store.get_trace(key))
        # One correlation id across the parent and both workers.
        assert {rec["trace"] for rec in spans} == {trace_id}
        pids = {rec["pid"] for rec in spans}
        assert os.getpid() not in pids  # job/stage spans ran in workers
        # Every requested stage shows up as a span in every job's trace.
        names = [rec["name"] for rec in spans]
        for stage in LIGHT_STAGES:
            assert names.count(stage) == 2
        # Job spans parent to the campaign span recorded in the parent.
        job_spans = [rec for rec in spans if rec["name"] == "job"]
        assert len(job_spans) == 2
        assert len({rec["parent"] for rec in job_spans}) == 1
        rollups = report.trace["rollups"]
        assert rollups["campaign"]["count"] == 1
        assert rollups["job"]["count"] == 2
        # The report's describe() surfaces the trace line.
        assert f"trace {trace_id}" in report.describe()

    def test_disabled_campaign_leaves_no_traces(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        store = ResultStore(tmp_path)
        report = run_campaign(light_sweep(workers=1), store=store)
        assert report.all_ok()
        assert report.trace is None
        assert store.trace_keys() == []
        assert "trace" not in report.as_dict()

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        store = ResultStore(tmp_path)
        report = run_campaign(light_sweep(workers=1), store=store)
        assert report.trace is not None
        assert len(store.trace_keys()) == 2

    def test_campaign_folds_worker_metrics(self, tmp_path):
        registry = get_registry()
        before = registry.snapshot()
        report = run_campaign(light_sweep(workers=2), store=ResultStore(tmp_path))
        assert report.all_ok()
        delta = registry.delta_since(before)
        counters = {key: entry[2] for key, entry in delta["counters"].items()}
        assert counters["repro_campaign_runs_total"] == 1
        assert counters['repro_campaign_jobs_total{outcome="ok"}'] == 2
        # The derive stage ran in forked workers; its kernel checkpoint
        # counters folded home with the job results.  (Warm persistent
        # workers may serve entirely from the apply cache, so assert on
        # total cache traffic rather than misses specifically.)
        traffic = counters.get("repro_kernel_cache_hits_total", 0) + counters.get(
            "repro_kernel_cache_misses_total", 0
        )
        assert traffic > 0
        histograms = delta["histograms"]
        assert histograms['repro_stage_seconds{stage="derive"}'][2]["count"] == 2
        assert histograms["repro_job_seconds"][2]["count"] == 2

    def test_cached_jobs_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(light_sweep(workers=1), store=store)
        registry = get_registry()
        before = registry.snapshot()
        rerun = run_campaign(light_sweep(workers=1), store=store)
        assert len(rerun.cached()) == 2
        delta = registry.delta_since(before)
        counters = {key: entry[2] for key, entry in delta["counters"].items()}
        assert counters['repro_campaign_jobs_total{outcome="cached"}'] == 2


class TestStoreTraces:
    def test_trace_round_trip_and_summary_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        spans = [{"trace": "t-1", "id": "a-1", "name": "job", "seconds": 0.1}]
        store.put_trace("k" * 64, spans)
        assert store.trace_keys() == ["k" * 64]
        assert store.get_trace("k" * 64) == spans
        # Trace files stay out of the job-result namespace.
        assert store.keys() == []
        usage = store.disk_usage()
        assert set(usage) == {"jobs", "artifacts", "stages", "traces", "total"}
        assert usage["traces"] > 0
        assert usage["total"] >= usage["traces"]
        summary = store.summary()
        assert summary["entries"]["traces"] == 1
        assert summary["bytes"] == usage

    def test_get_trace_none_on_missing_or_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_trace("missing") is None
        store.trace_path("bad").write_text("{broken\n", encoding="utf-8")
        assert store.get_trace("bad") is None

    def test_clear_removes_traces(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_trace("k" * 64, [{"name": "x"}])
        store.clear()
        assert store.trace_keys() == []


# -- rendering ----------------------------------------------------------------------


class TestRendering:
    def _spans(self):
        tracer = Tracer()
        with tracer.activate():
            with span("job", arch=ARCH):
                with span("derive"):
                    pass
        return tracer.spans

    def test_waterfall_shape(self):
        text = render_waterfall(self._spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "2 spans" in lines[0]
        assert any(line.lstrip().startswith("job") for line in lines)
        assert any(line.startswith("  derive") for line in lines)
        assert all("|" in line for line in lines[1:])

    def test_rollup_table(self):
        text = render_rollup(self._spans())
        assert text.splitlines()[0].split() == ["span", "count", "total", "s", "max", "s"]
        assert "derive" in text


# -- the service endpoint -----------------------------------------------------------


@pytest.mark.usefixtures("example_derivation")
class TestMetricsEndpoint:
    def test_v1_metrics_both_formats(self, tmp_path):
        from repro.service import ServiceError, start_service

        with start_service(store_root=str(tmp_path / "store"), workers=1) as handle:
            client = handle.client(timeout=60.0)
            submitted = client.submit(
                arch=ARCH, stages="properties,derive", workload_length=24
            )
            final = client.wait(submitted["job"]["id"], timeout=60.0)
            assert final["state"] == "done"

            text = client.metrics()
            assert "# TYPE repro_service_jobs_total counter" in text
            match = re.search(
                r'^repro_service_jobs_total\{state="done"\} (\d+)$', text, re.M
            )
            assert match and int(match.group(1)) >= 1
            assert re.search(r"^repro_service_submissions_total \d+$", text, re.M)
            assert re.search(r"^repro_service_queue_depth \d+$", text, re.M)
            assert re.search(
                r"^repro_service_queue_wait_seconds_count \d+$", text, re.M
            )
            # Kernel/store/campaign metrics flow through the same registry.
            assert re.search(r"^repro_campaign_jobs_total\{", text, re.M)

            samples = client.metrics(fmt="json")
            by_name = {}
            for entry in samples:
                by_name.setdefault(entry["name"], []).append(entry)
            done = [
                entry
                for entry in by_name["repro_service_jobs_total"]
                if entry["labels"] == {"state": "done"}
            ]
            assert done and done[0]["value"] >= 1
            assert by_name["repro_service_submissions_total"][0]["value"] >= 1

            with pytest.raises(ServiceError) as excinfo:
                client.metrics(fmt="xml")
            assert excinfo.value.status == 400


# -- the CLI ------------------------------------------------------------------------


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestTraceCli:
    @pytest.fixture
    def traced_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        code, output = run_cli(
            "campaign",
            "--no-family",
            "--arch",
            ARCH,
            "--stages",
            "properties,derive",
            "--workers",
            "1",
            "--store",
            store_dir,
            "--trace",
        )
        assert code == 0
        assert "trace t-" in output
        return store_dir

    def test_waterfall_by_key_prefix(self, traced_store):
        key = ResultStore(traced_store).trace_keys()[0]
        code, output = run_cli("trace", key[:10], "--store", traced_store)
        assert code == 0
        assert output.startswith("trace t-")
        assert "properties" in output and "derive" in output

    def test_summary_by_file_path(self, traced_store):
        key = ResultStore(traced_store).trace_keys()[0]
        path = str(ResultStore(traced_store).trace_path(key))
        code, output = run_cli("trace", path, "--summary")
        assert code == 0
        assert output.splitlines()[0].startswith("span")

    def test_missing_target_errors(self, traced_store, capsys):
        code, _ = run_cli("trace", "zzz-no-such", "--store", traced_store)
        assert code == 2
        assert "no trace matches" in capsys.readouterr().err


# -- bench integration --------------------------------------------------------------


class TestBenchMetrics:
    def test_derive_scenario_snapshot(self):
        from repro.perf import run_benchmarks

        results = run_benchmarks(names=["derive_example"], quick=True)
        result = results["derive_example"]
        metrics = result.metrics
        assert metrics["kernel_live_nodes"] > 0
        assert 0.0 <= metrics["kernel_cache_hit_rate"] <= 1.0
        assert "kernel_gc_runs" in metrics
        assert result.as_dict()["metrics"] == metrics
