"""Property-based tests of the Section 3 theory on random pipeline specifications.

The paper's claim is not about one architecture: *any* functional
specification whose per-stage stall conditions are monotone in the negated
moe flags (and refer only to downstream stages) admits a unique most
liberal moe assignment, reached by fixed-point iteration, which is maximal
among all satisfying assignments.  These tests generate random feed-forward
multi-pipe specifications with hypothesis and machine-check the whole
chain: the Section 3.1 properties, the derivation, maximality, agreement of
the symbolic and concrete fixed points, and the derived interlock passing
every property check.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checking import PropertyChecker
from repro.expr import FALSE, Var, big_or, eval_expr
from repro.pipeline import ClosedFormInterlock
from repro.spec import (
    FunctionalSpec,
    StallClause,
    check_all_properties,
    check_maximality,
    check_most_liberal_satisfies,
    concrete_most_liberal,
    most_liberal_is_maximal,
    performance_spec_of,
    symbolic_most_liberal,
)

GLOBAL_INPUTS = ["wait", "irq"]


@st.composite
def random_pipeline_specs(draw):
    """A random feed-forward multi-pipe functional specification.

    Every pipe has a completion stage stalling on ``req ∧ ¬gnt``; every
    upstream stage stalls on ``rtm ∧ ¬next.moe`` plus, optionally, a global
    input and/or the negated moe of a *deeper* stage of another pipe (so the
    moe dependency graph stays acyclic, as the paper's maximality proof
    assumes).
    """
    num_pipes = draw(st.integers(min_value=1, max_value=3))
    depths = [draw(st.integers(min_value=2, max_value=4)) for _ in range(num_pipes)]

    inputs = list(GLOBAL_INPUTS)
    for pipe in range(num_pipes):
        inputs.extend([f"p{pipe}.req", f"p{pipe}.gnt"])
        for stage in range(1, depths[pipe] + 1):
            inputs.append(f"p{pipe}.{stage}.rtm")

    clauses = []
    for pipe in range(num_pipes):
        depth = depths[pipe]
        for stage in range(depth, 0, -1):
            moe = f"p{pipe}.{stage}.moe"
            if stage == depth:
                condition = Var(f"p{pipe}.req") & ~Var(f"p{pipe}.gnt")
            else:
                disjuncts = [
                    Var(f"p{pipe}.{stage}.rtm") & ~Var(f"p{pipe}.{stage + 1}.moe")
                ]
                if draw(st.booleans()):
                    disjuncts.append(Var(draw(st.sampled_from(GLOBAL_INPUTS))))
                # Optionally couple to a strictly deeper stage of another pipe
                # (cross-pipe structural hazard), keeping the graph acyclic.
                other_candidates = [
                    (other, other_stage)
                    for other in range(num_pipes)
                    if other != pipe
                    for other_stage in range(stage + 1, depths[other] + 1)
                ]
                if other_candidates and draw(st.booleans()):
                    other, other_stage = draw(st.sampled_from(other_candidates))
                    disjuncts.append(~Var(f"p{other}.{other_stage}.moe"))
                condition = big_or(disjuncts)
            clauses.append(StallClause(moe=moe, condition=condition))

    return FunctionalSpec(name="random-pipeline", clauses=clauses, inputs=inputs)


@st.composite
def specs_with_valuations(draw):
    """A random specification together with a random input valuation."""
    spec = draw(random_pipeline_specs())
    valuation = {name: draw(st.booleans()) for name in spec.input_signals()}
    return spec, valuation


class TestRandomPipelineTheory:
    @settings(max_examples=25, deadline=None)
    @given(random_pipeline_specs())
    def test_section_3_properties_hold(self, spec):
        report = check_all_properties(spec)
        assert report.all_hold(), report.describe()

    @settings(max_examples=25, deadline=None)
    @given(random_pipeline_specs())
    def test_derivation_is_feed_forward_and_bounded(self, spec):
        derivation = symbolic_most_liberal(spec)
        assert derivation.feed_forward
        assert 1 <= derivation.iterations <= len(spec.moe_flags()) + 1
        # Closed forms mention primary inputs only.
        moe_set = set(spec.moe_flags())
        for expression in derivation.moe_expressions.values():
            assert not (expression.variables() & moe_set)

    @settings(max_examples=25, deadline=None)
    @given(random_pipeline_specs())
    def test_most_liberal_satisfies_and_is_maximal(self, spec):
        derivation = symbolic_most_liberal(spec)
        assert check_most_liberal_satisfies(spec, derivation).holds
        assert check_maximality(spec, derivation).holds
        assert most_liberal_is_maximal(spec, derivation)

    @settings(max_examples=20, deadline=None)
    @given(random_pipeline_specs())
    def test_derived_interlock_passes_every_property_check(self, spec):
        interlock = ClosedFormInterlock.from_derivation(symbolic_most_liberal(spec))
        checker = PropertyChecker(spec, architecture=None, use_environment=False)
        assert checker.check_functional(interlock).all_hold()
        assert checker.check_performance(interlock).all_hold()
        assert checker.check_combined(interlock).all_hold()
        assert checker.check_equivalence_with_derived(interlock).all_hold()

    @settings(max_examples=25, deadline=None)
    @given(specs_with_valuations())
    def test_symbolic_and_concrete_fixed_points_agree(self, spec_and_valuation):
        spec, valuation = spec_and_valuation
        derivation = symbolic_most_liberal(spec)
        concrete = concrete_most_liberal(spec, valuation)
        symbolic = derivation.evaluate(valuation)
        assert concrete == symbolic

    @settings(max_examples=25, deadline=None)
    @given(specs_with_valuations())
    def test_concrete_fixed_point_satisfies_both_spec_halves(self, spec_and_valuation):
        spec, valuation = spec_and_valuation
        assignment = dict(valuation)
        assignment.update(concrete_most_liberal(spec, valuation))
        performance = performance_spec_of(spec)
        assert eval_expr(spec.functional_formula(), assignment)
        assert eval_expr(performance.formula(), assignment)

    @settings(max_examples=15, deadline=None)
    @given(random_pipeline_specs())
    def test_all_false_always_satisfies_but_is_not_maximal(self, spec):
        # Property (1): stalling everything is always functionally safe...
        all_false = {moe: False for moe in spec.moe_flags()}
        assignment = {name: True for name in spec.input_signals()}
        assignment.update(all_false)
        assert eval_expr(spec.functional_formula(), assignment)
        # ...but unless every stage is genuinely forced to stall under these
        # inputs, it is not the most liberal assignment.
        derived = concrete_most_liberal(spec, {name: False for name in spec.input_signals()})
        assert all(derived.values()), "with no stall causes asserted nothing needs to stall"
