"""Tests for automatic spec construction and the fixed-point derivation."""

import pytest

from repro.archs import example_architecture, risc5_architecture, scaled_architecture
from repro.bdd import ExprBddContext
from repro.expr import FALSE, Or, TRUE, Var, eval_expr
from repro.pipeline import signals as sig
from repro.spec import (
    BuilderOptions,
    DerivationError,
    FunctionalSpec,
    SpecBuilder,
    StallClause,
    build_functional_spec,
    concrete_most_liberal,
    conservative_variant,
    derive_combined_spec,
    derive_performance_spec,
    most_liberal_is_maximal,
    symbolic_most_liberal,
    unnecessary_stall_condition,
)
from repro.spec.functional import SpecificationError


class TestSpecBuilder:
    def test_one_clause_per_stage(self, example_arch, example_spec):
        assert len(example_spec.clauses) == example_arch.stage_count()
        assert set(example_spec.moe_flags()) == set(example_arch.moe_signals())

    def test_completion_stage_condition(self, example_arch):
        builder = SpecBuilder(example_arch)
        condition = builder.stall_condition_for("long", 4)
        assert condition == Var("long.req") & ~Var("long.gnt")

    def test_intermediate_stage_condition(self, example_arch):
        builder = SpecBuilder(example_arch)
        condition = builder.stall_condition_for("long", 3)
        assert condition == Var("long.3.rtm") & ~Var("long.4.moe")

    def test_issue_stage_includes_wait_lockstep_scoreboard(self, example_arch):
        builder = SpecBuilder(example_arch)
        condition = builder.stall_condition_for("long", 1)
        names = condition.variables()
        assert "op_is_WAIT" in names
        assert "short.1.moe" in names
        assert "scb[0]" in names
        assert "long.1.src.regaddr=0" in names
        assert "c.regaddr=0" in names

    def test_short_issue_has_no_wait(self, example_arch):
        builder = SpecBuilder(example_arch)
        condition = builder.stall_condition_for("short", 1)
        assert "op_is_WAIT" not in condition.variables()

    def test_options_disable_features(self, example_arch):
        options = BuilderOptions(
            include_scoreboard=False, include_lockstep=False, include_extra_stalls=False
        )
        spec = SpecBuilder(example_arch, options).build()
        condition = spec.condition_for("long.1.moe")
        names = condition.variables()
        assert "op_is_WAIT" not in names
        assert "short.1.moe" not in names
        assert not any(name.startswith("scb") for name in names)

    def test_no_bypass_option_drops_bus_target_terms(self, example_arch):
        spec = SpecBuilder(example_arch, BuilderOptions(include_bypass=False)).build()
        condition = spec.condition_for("long.1.moe")
        assert not any(name.startswith("c.regaddr") for name in condition.variables())

    def test_conservative_variant_stalls_more(self, example_arch):
        normal = build_functional_spec(example_arch)
        conservative = conservative_variant(example_arch)
        context = ExprBddContext()
        # The conservative issue condition is implied by... the other way round:
        # the normal condition implies the conservative one (fewer escape hatches).
        claim = normal.condition_for("long.1.moe").implies(
            conservative.condition_for("long.1.moe")
        )
        assert context.is_valid(claim)
        assert not context.are_equivalent(
            normal.condition_for("long.1.moe"), conservative.condition_for("long.1.moe")
        )

    def test_final_stage_without_bus_never_stalls(self):
        from repro.pipeline import Architecture, PipeSpec

        arch = Architecture(name="nb", pipes=[PipeSpec(name="p", num_stages=2)], buses=[])
        spec = build_functional_spec(arch)
        assert spec.condition_for("p.2.moe") == FALSE

    def test_builder_output_is_monotone_for_all_archs(self, firepath_spec, risc_spec):
        assert firepath_spec.is_monotone()
        assert risc_spec.is_monotone()

    def test_metadata_records_architecture(self, example_arch, example_spec):
        assert example_spec.metadata["architecture"] is example_arch


class TestConcreteDerivation:
    def test_all_inputs_false_gives_all_moving(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        moe = concrete_most_liberal(example_spec, inputs)
        assert all(moe.values())

    def test_completion_stall_propagates_with_rtm_chain(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        inputs.update(
            {
                "long.req": True,
                "long.3.rtm": True,
                "long.2.rtm": True,
                "long.1.rtm": True,
            }
        )
        moe = concrete_most_liberal(example_spec, inputs)
        assert not moe["long.4.moe"]
        assert not moe["long.3.moe"]
        assert not moe["long.2.moe"]
        assert not moe["long.1.moe"]
        # Lock-step drags the short issue stage down with the long one.
        assert not moe["short.1.moe"]
        assert moe["short.2.moe"]

    def test_stall_does_not_propagate_without_rtm(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        inputs["long.req"] = True
        moe = concrete_most_liberal(example_spec, inputs)
        assert not moe["long.4.moe"]
        assert moe["long.3.moe"] and moe["long.2.moe"] and moe["long.1.moe"]

    def test_grant_removes_completion_stall(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        inputs.update({"long.req": True, "long.gnt": True})
        moe = concrete_most_liberal(example_spec, inputs)
        assert all(moe.values())

    def test_wait_stalls_both_issue_stages(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        inputs["op_is_WAIT"] = True
        moe = concrete_most_liberal(example_spec, inputs)
        assert not moe["long.1.moe"]
        assert not moe["short.1.moe"]
        assert moe["long.2.moe"] and moe["short.2.moe"]

    def test_scoreboard_hazard_stalls_issue_unless_bypassed(self, example_spec):
        inputs = {name: False for name in example_spec.input_signals()}
        inputs.update({"long.1.src.regaddr=0": True, "scb[0]": True})
        moe = concrete_most_liberal(example_spec, inputs)
        assert not moe["long.1.moe"]
        inputs["c.regaddr=0"] = True  # bypassed by the completion bus this cycle
        moe = concrete_most_liberal(example_spec, inputs)
        assert moe["long.1.moe"]

    def test_non_monotone_spec_raises(self):
        spec = FunctionalSpec(
            name="broken",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=Var("x")),
            ],
            inputs=["x"],
        )
        with pytest.raises(DerivationError):
            concrete_most_liberal(spec, {"x": True})

    def test_matches_symbolic_derivation_on_sampled_inputs(self, example_spec, example_derivation):
        import itertools
        import random

        rng = random.Random(0)
        inputs = example_spec.input_signals()
        for _ in range(50):
            valuation = {name: bool(rng.getrandbits(1)) for name in inputs}
            concrete = concrete_most_liberal(example_spec, valuation)
            symbolic = example_derivation.evaluate(valuation)
            assert concrete == symbolic


class TestSymbolicDerivation:
    def test_closed_forms_use_inputs_only(self, example_spec, example_derivation):
        input_set = set(example_spec.input_signals())
        for expression in example_derivation.moe_expressions.values():
            assert expression.variables() <= input_set

    def test_iteration_count_bounded_by_stage_count(self, example_spec, example_derivation):
        assert 1 <= example_derivation.iterations <= len(example_spec.moe_flags()) + 2

    def test_feed_forward_flag(self, example_derivation, risc_spec):
        assert example_derivation.feed_forward is False
        assert symbolic_most_liberal(risc_spec).feed_forward is True

    def test_completion_stage_closed_form(self, example_derivation):
        expression = example_derivation.moe_expression("long.4.moe")
        assert eval_expr(expression, {"long.req": True, "long.gnt": False}) is False
        assert eval_expr(expression, {"long.req": True, "long.gnt": True}) is True
        assert eval_expr(expression, {"long.req": False, "long.gnt": False}) is True

    def test_stall_expressions_are_negations(self, example_derivation):
        context = ExprBddContext()
        stalls = example_derivation.stall_expressions()
        for moe, expression in example_derivation.moe_expressions.items():
            assert context.are_equivalent(stalls[moe], ~expression)

    def test_bdd_sizes_reported(self, example_derivation):
        assert set(example_derivation.bdd_sizes) == set(example_derivation.moe_expressions)
        assert all(size >= 0 for size in example_derivation.bdd_sizes.values())

    def test_describe_mentions_every_flag(self, example_derivation):
        text = example_derivation.describe()
        for moe in example_derivation.moe_expressions:
            assert moe in text

    def test_derivation_scales_to_deeper_pipes(self):
        arch = scaled_architecture(num_pipes=3, pipe_depth=6, num_registers=2)
        spec = build_functional_spec(arch)
        derivation = symbolic_most_liberal(spec)
        assert len(derivation.moe_expressions) == 18

    def test_non_monotone_spec_raises(self):
        spec = FunctionalSpec(
            name="broken",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=Var("a.moe")),
            ],
            inputs=[],
        )
        with pytest.raises(DerivationError):
            symbolic_most_liberal(spec, max_iterations=5)


class TestDerivedSpecs:
    def test_derive_performance_spec_checks_preconditions(self, example_spec):
        performance = derive_performance_spec(example_spec)
        assert [c.moe for c in performance.clauses] == example_spec.moe_flags()

    def test_derive_combined_spec(self, example_spec):
        combined = derive_combined_spec(example_spec)
        assert [c.moe for c in combined.clauses] == example_spec.moe_flags()

    def test_derivation_rejects_non_monotone_spec(self):
        spec = FunctionalSpec(
            name="broken",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=Var("x")),
            ],
            inputs=["x"],
        )
        with pytest.raises(SpecificationError):
            derive_performance_spec(spec)

    def test_skip_precondition_check(self):
        spec = FunctionalSpec(
            name="broken",
            clauses=[
                StallClause(moe="a.moe", condition=Var("b.moe")),
                StallClause(moe="b.moe", condition=Var("x")),
            ],
            inputs=["x"],
        )
        performance = derive_performance_spec(spec, check_preconditions=False)
        assert len(performance.clauses) == 2

    def test_most_liberal_is_maximal(self, example_spec, example_derivation):
        assert most_liberal_is_maximal(example_spec, example_derivation)

    def test_unnecessary_stall_condition_matches_moe(self, example_spec, example_derivation):
        conditions = unnecessary_stall_condition(example_spec, example_derivation)
        assert conditions == example_derivation.moe_expressions
