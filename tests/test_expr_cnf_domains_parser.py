"""Tests for CNF conversion, finite-domain quantification, parser and printers."""

import pytest

from repro.expr import (
    And,
    EnumVar,
    FALSE,
    FiniteDomain,
    Iff,
    Implies,
    Not,
    Or,
    ParseError,
    SDREG,
    TRUE,
    Var,
    all_assignments,
    distribute_to_cnf,
    encode_enum_assignment,
    eval_expr,
    exists,
    exists_many,
    forall,
    forall_many,
    parse_expr,
    register_address_domain,
    scoreboard_bit,
    to_cnf_clauses,
    to_text,
    to_unicode,
    to_verilog,
    vars_,
)
from repro.sat import solve_clauses


class TestTseitinCnf:
    def _equisatisfiable(self, expr):
        cnf = to_cnf_clauses(expr)
        result = solve_clauses(cnf.num_vars, cnf.clauses)
        names = expr.variables()
        brute = any(eval_expr(expr, a) for a in all_assignments(names))
        assert bool(result) == brute
        return cnf, result

    def test_simple_satisfiable(self):
        a, b = vars_("a", "b")
        cnf, result = self._equisatisfiable(And(a, Not(b)))
        assert result.satisfiable
        assert result.assignment[cnf.id_for("a")] is True
        assert result.assignment[cnf.id_for("b")] is False

    def test_unsatisfiable(self):
        a = Var("a")
        _, result = self._equisatisfiable(And(a, Not(a)))
        assert not result.satisfiable

    def test_derived_operators(self):
        a, b, c = vars_("a", "b", "c")
        self._equisatisfiable(Iff(Implies(a, b), Not(c)))

    def test_constants(self):
        cnf = to_cnf_clauses(TRUE)
        assert solve_clauses(cnf.num_vars, cnf.clauses).satisfiable
        cnf = to_cnf_clauses(FALSE)
        assert not solve_clauses(cnf.num_vars, cnf.clauses).satisfiable

    def test_root_is_unit_clause(self):
        a, b = vars_("a", "b")
        cnf = to_cnf_clauses(Or(a, b))
        assert (cnf.root,) in cnf.clauses

    def test_var_ids_are_unique(self):
        a, b, c = vars_("a", "b", "c")
        cnf = to_cnf_clauses(And(a, b, c))
        assert len(set(cnf.var_ids.values())) == 3


class TestDistributedCnf:
    def test_result_is_conjunction_of_clauses(self):
        a, b, c = vars_("a", "b", "c")
        cnf = distribute_to_cnf(Or(And(a, b), c))
        assert isinstance(cnf, And)
        for clause in cnf.operands:
            assert isinstance(clause, (Or, Var, Not))

    def test_semantics_preserved(self):
        a, b, c = vars_("a", "b", "c")
        original = Iff(Implies(a, b), c)
        cnf = distribute_to_cnf(original)
        for assignment in all_assignments(["a", "b", "c"]):
            assert eval_expr(original, assignment) == eval_expr(cnf, assignment)


class TestFiniteDomains:
    def test_domain_validation(self):
        with pytest.raises(ValueError):
            FiniteDomain("empty", ())
        with pytest.raises(ValueError):
            FiniteDomain("dup", (1, 1))

    def test_register_address_domain(self):
        domain = register_address_domain(4)
        assert list(domain) == [0, 1, 2, 3]
        assert len(domain) == 4
        assert 2 in domain and 9 not in domain
        assert domain.index_of(3) == 3
        with pytest.raises(ValueError):
            domain.index_of(7)

    def test_register_domain_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            register_address_domain(0)

    def test_sdreg_domain(self):
        assert list(SDREG) == ["src", "dst"]

    def test_enum_var_indicators(self):
        domain = register_address_domain(3)
        reg = EnumVar("c.regaddr", domain)
        assert reg.indicator(1).name == "c.regaddr=1"
        assert [v.name for v in reg.indicators()] == [
            "c.regaddr=0",
            "c.regaddr=1",
            "c.regaddr=2",
        ]
        with pytest.raises(ValueError):
            reg.indicator(5)

    def test_enum_var_equality_atoms(self):
        domain = register_address_domain(2)
        reg = EnumVar("r", domain)
        env = reg.assignment_for(1)
        assert eval_expr(reg.equals_value(1), env)
        assert not eval_expr(reg.equals_value(0), env)
        assert eval_expr(reg.not_equals_value(0), env)

    def test_enum_var_cross_equality(self):
        domain = register_address_domain(2)
        left, right = EnumVar("x", domain), EnumVar("y", domain)
        env = {**left.assignment_for(1), **right.assignment_for(1)}
        assert eval_expr(left.equals(right), env)
        env = {**left.assignment_for(1), **right.assignment_for(0)}
        assert not eval_expr(left.equals(right), env)
        assert eval_expr(left.not_equals(right), env)

    def test_enum_var_cross_domain_comparison_rejected(self):
        reg = EnumVar("x", register_address_domain(2))
        sel = EnumVar("y", SDREG)
        with pytest.raises(ValueError):
            reg.equals(sel)

    def test_enum_var_validity_constraint(self):
        domain = register_address_domain(2)
        reg = EnumVar("r", domain)
        assert eval_expr(reg.valid(), reg.assignment_for(0))
        assert not eval_expr(reg.valid(), {"r=0": True, "r=1": True})
        assert not eval_expr(reg.valid(), {"r=0": False, "r=1": False})

    def test_encode_enum_assignment(self):
        domain = register_address_domain(2)
        x, y = EnumVar("x", domain), EnumVar("y", domain)
        env = encode_enum_assignment([(x, 0), (y, 1)])
        assert env == {"x=0": True, "x=1": False, "y=0": False, "y=1": True}

    def test_quantifiers_expand_finitely(self):
        domain = register_address_domain(3)
        scb = {f"scb[{i}]": (i == 2) for i in range(3)}
        some_set = exists(domain, lambda a: scoreboard_bit("scb", a))
        all_set = forall(domain, lambda a: scoreboard_bit("scb", a))
        assert eval_expr(some_set, scb)
        assert not eval_expr(all_set, scb)

    def test_nested_quantifiers(self):
        domain = register_address_domain(2)
        formula = exists_many(
            [SDREG, domain],
            lambda which, address: Var(f"p.1.{which}.regaddr={address}") & Var(f"scb[{address}]"),
        )
        env = {
            "p.1.src.regaddr=0": False,
            "p.1.src.regaddr=1": True,
            "p.1.dst.regaddr=0": False,
            "p.1.dst.regaddr=1": False,
            "scb[0]": False,
            "scb[1]": True,
        }
        assert eval_expr(formula, env)
        env["scb[1]"] = False
        assert not eval_expr(formula, env)

    def test_forall_many(self):
        domain = register_address_domain(2)
        formula = forall_many([domain], lambda a: Var(f"ok[{a}]"))
        assert eval_expr(formula, {"ok[0]": True, "ok[1]": True})
        assert not eval_expr(formula, {"ok[0]": True, "ok[1]": False})


class TestParserAndPrinters:
    def test_parse_simple(self):
        assert parse_expr("a & b") == And(Var("a"), Var("b"))
        assert parse_expr("a | b | c") == Or(Var("a"), Var("b"), Var("c"))
        assert parse_expr("!a") == Not(Var("a"))

    def test_parse_precedence(self):
        parsed = parse_expr("a & b | c")
        assert isinstance(parsed, Or)
        parsed = parse_expr("!a & b")
        assert parsed == And(Not(Var("a")), Var("b"))

    def test_parse_implication_right_associative(self):
        parsed = parse_expr("a -> b -> c")
        assert parsed == Implies(Var("a"), Implies(Var("b"), Var("c")))

    def test_parse_iff_and_parentheses(self):
        parsed = parse_expr("(a | b) <-> c")
        assert parsed == Iff(Or(Var("a"), Var("b")), Var("c"))

    def test_parse_constants(self):
        assert parse_expr("True") == TRUE
        assert parse_expr("False") == FALSE

    def test_parse_dotted_and_indexed_identifiers(self):
        parsed = parse_expr("long.1.rtm & !long.2.moe | scb[3] & c.regaddr=3")
        assert "long.1.rtm" in parsed.variables()
        assert "long.2.moe" in parsed.variables()
        assert "scb[3]" in parsed.variables()
        assert "c.regaddr=3" in parsed.variables()

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_expr("")
        with pytest.raises(ParseError):
            parse_expr("a &")
        with pytest.raises(ParseError):
            parse_expr("(a | b")
        with pytest.raises(ParseError):
            parse_expr("a ? b")
        with pytest.raises(ParseError):
            parse_expr("a b")

    def test_roundtrip_through_text(self):
        a, b, c = vars_("a", "b", "c")
        original = Implies(And(a, Not(b)), Or(c, a))
        assert parse_expr(to_text(original)) == original

    def test_unicode_printer(self):
        a, b = vars_("a", "b")
        rendered = to_unicode(Implies(And(a, Not(b)), b))
        assert "∧" in rendered and "¬" in rendered and "→" in rendered

    def test_verilog_printer(self):
        a, b = vars_("a", "b")
        assert to_verilog(And(a, Not(b))) == "a && !b"
        assert to_verilog(TRUE) == "1'b1"
        assert to_verilog(Implies(a, b)) == "!a || b"
        assert "==" in to_verilog(Iff(a, b))

    def test_text_printer_parenthesises_by_precedence(self):
        a, b, c = vars_("a", "b", "c")
        assert to_text(And(Or(a, b), c)) == "(a | b) & c"
        assert to_text(Or(And(a, b), c)) == "a & b | c"
