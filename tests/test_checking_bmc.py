"""Tests for bounded model checking of sequential interlock behaviour (repro.checking.bmc)."""

import pytest

from repro.checking import (
    BoundedModelChecker,
    CombinationalModel,
    RegisteredGrantModel,
    StuckResetModel,
    environment_formula,
    timed_name,
)
from repro.expr import Var
from repro.pipeline import ClosedFormInterlock
from repro.spec import FunctionalSpec, StallClause, symbolic_most_liberal
from repro.expr import parse_expr


@pytest.fixture(scope="module")
def tiny_spec():
    """A two-stage pipe: completion stage on a bus grant, issue stage behind it."""
    return FunctionalSpec(
        name="tiny",
        clauses=[
            StallClause(moe="p.2.moe", condition=parse_expr("p.req & !p.gnt")),
            StallClause(moe="p.1.moe", condition=parse_expr("p.1.rtm & !p.2.moe")),
        ],
        inputs=["p.req", "p.gnt", "p.1.rtm"],
    )


@pytest.fixture(scope="module")
def tiny_model(tiny_spec):
    derivation = symbolic_most_liberal(tiny_spec)
    return CombinationalModel(derivation.moe_expressions, name="tiny-derived")


class TestTimedNaming:
    def test_timed_name_format(self):
        assert timed_name("p.1.moe", 3) == "p.1.moe@3"

    def test_outputs_at_use_timed_inputs(self, tiny_model):
        outputs = tiny_model.outputs_at(2)
        for expression in outputs.values():
            assert all(name.endswith("@2") for name in expression.variables())


class TestCombinationalModel:
    def test_derived_interlock_passes_both_checks(self, tiny_spec, tiny_model):
        checker = BoundedModelChecker(tiny_spec)
        assert checker.check_functional(tiny_model, bound=4).holds
        assert checker.check_performance(tiny_model, bound=4).holds

    def test_example_architecture_derived_interlock_passes(self, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        model = CombinationalModel(derivation.moe_expressions, name="example-derived")
        checker = BoundedModelChecker(example_spec)
        assert checker.check_functional(model, bound=2).holds
        assert checker.check_performance(model, bound=2).holds

    def test_claims_counted(self, tiny_spec, tiny_model):
        checker = BoundedModelChecker(tiny_spec)
        result = checker.check_functional(tiny_model, bound=3)
        assert result.claims_checked == 3 * len(tiny_spec.moe_flags())

    def test_never_stalling_model_fails_functionally(self, tiny_spec):
        model = CombinationalModel(
            {"p.2.moe": parse_expr("True"), "p.1.moe": parse_expr("True")},
            name="never-stalls",
        )
        checker = BoundedModelChecker(tiny_spec)
        result = checker.check_functional(model, bound=2)
        assert not result.holds
        violation = result.first_violation()
        assert violation.cycle == 0
        assert violation.kind == "functional"


class TestStuckResetModel:
    def test_forced_low_reset_is_a_performance_bug(self, tiny_spec, tiny_model):
        model = StuckResetModel(tiny_model, forced_values={"p.2.moe": False}, cycles=2)
        checker = BoundedModelChecker(tiny_spec, stop_at_first=False)
        result = checker.check_performance(model, bound=4)
        assert not result.holds
        cycles = {violation.cycle for violation in result.violations}
        # Violations occur only while the reset value is forced, at the forced stage.
        assert cycles and cycles <= {0, 1}
        assert {violation.moe for violation in result.violations} == {"p.2.moe"}
        # The upstream stage's closed form still assumes the derived value of
        # p.2.moe, so during the forced window it can move into a stage that
        # is not accepting — a genuine functional hazard, also bounded by the
        # reset window (exactly what the paper's "incorrect initialisation
        # values" bugs look like).
        functional = checker.check_functional(model, bound=4)
        assert all(violation.cycle < 2 for violation in functional.violations)

    def test_forced_high_reset_is_a_functional_bug(self, tiny_spec, tiny_model):
        model = StuckResetModel(tiny_model, forced_values={"p.2.moe": True}, cycles=1)
        checker = BoundedModelChecker(tiny_spec)
        result = checker.check_functional(model, bound=3)
        assert not result.holds
        assert result.first_violation().cycle == 0

    def test_violation_witness_is_cycle_stamped(self, tiny_spec, tiny_model):
        model = StuckResetModel(tiny_model, forced_values={"p.2.moe": False}, cycles=1)
        checker = BoundedModelChecker(tiny_spec)
        result = checker.check_performance(model, bound=2)
        violation = result.first_violation()
        assert violation is not None
        witness = violation.witness_at(violation.cycle)
        # The witness names plain (untimed) signals of the failing cycle.
        assert all("@" not in name for name in witness)

    def test_clean_after_reset_window(self, tiny_spec, tiny_model):
        model = StuckResetModel(tiny_model, forced_values={"p.2.moe": False}, cycles=2)
        checker = BoundedModelChecker(tiny_spec, stop_at_first=False)
        result = checker.check_performance(model, bound=5)
        assert all(violation.cycle < 2 for violation in result.violations)


class TestRegisteredGrantModel:
    def test_registered_grant_is_conservative(self, example_arch, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        base = CombinationalModel(derivation.moe_expressions, name="example-derived")
        model = RegisteredGrantModel(base, example_arch)
        checker = BoundedModelChecker(
            example_spec, environment=environment_formula(example_arch), stop_at_first=False
        )
        # Functionally safe: it only ever stalls more.
        assert checker.check_functional(model, bound=2).holds
        # But it stalls a completion stage whose grant arrived with a
        # same-cycle request — a performance bug from cycle 0 onwards.
        result = checker.check_performance(model, bound=2)
        assert not result.holds
        completion_flags = {"long.4.moe", "short.2.moe"}
        assert {violation.moe for violation in result.violations} & completion_flags

    def test_cycle_zero_never_grants(self, example_arch, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        base = CombinationalModel(derivation.moe_expressions)
        model = RegisteredGrantModel(base, example_arch)
        outputs = model.outputs_at(0)
        # At cycle 0 no request can be pending from "the previous cycle", so
        # the grant variable must not appear in any output expression.
        for expression in outputs.values():
            assert timed_name("long.gnt", 0) not in expression.variables()


class TestReporting:
    def test_describe_mentions_bound_and_kind(self, tiny_spec, tiny_model):
        checker = BoundedModelChecker(tiny_spec)
        text = checker.check_functional(tiny_model, bound=2).describe()
        assert "functional" in text
        assert "bound 2" in text

    def test_unknown_kind_rejected(self, tiny_spec, tiny_model):
        checker = BoundedModelChecker(tiny_spec)
        with pytest.raises(ValueError):
            checker.check(tiny_model, bound=1, kind="liveness")
