"""Tests for the interlock implementations and the cycle-accurate simulator."""

import pytest

from repro.pipeline import (
    ClosedFormInterlock,
    ConservativeCompletionInterlock,
    HazardKind,
    PipelineSimulator,
    Program,
    SimulatorConfig,
    SpecFixedPointInterlock,
    StuckResetInterlock,
    alu,
    bubble,
    reference_interlock,
    simulate,
    store,
    wait,
)
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.workloads import (
    BALANCED,
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WorkloadGenerator,
    completion_contention_program,
    dependent_chain,
    independent_stream,
    wait_stream,
)


class TestInterlockImplementations:
    def test_closed_form_and_fixed_point_agree(self, example_spec, example_interlock):
        import random

        fixed_point = SpecFixedPointInterlock(example_spec)
        rng = random.Random(1)
        for _ in range(40):
            inputs = {name: bool(rng.getrandbits(1)) for name in example_spec.input_signals()}
            assert example_interlock.compute_moe(inputs) == fixed_point.compute_moe(inputs)

    def test_moe_flags_listed(self, example_spec, example_interlock):
        assert set(example_interlock.moe_flags()) == set(example_spec.moe_flags())
        assert set(SpecFixedPointInterlock(example_spec).moe_flags()) == set(
            example_spec.moe_flags()
        )

    def test_reference_interlock_factory(self, example_spec):
        assert isinstance(reference_interlock(example_spec), ClosedFormInterlock)
        assert isinstance(
            reference_interlock(example_spec, symbolic=False), SpecFixedPointInterlock
        )

    def test_expression_access_and_mutation(self, example_interlock):
        from repro.expr import FALSE

        expression = example_interlock.expression_for("long.4.moe")
        assert "long.gnt" in expression.variables()
        mutated = example_interlock.with_replaced_flag("long.4.moe", FALSE)
        assert mutated.compute_moe(
            {name: False for name in mutated.expressions()["long.1.moe"].variables() | {"long.req", "long.gnt"}}
        )["long.4.moe"] is False
        with pytest.raises(KeyError):
            example_interlock.with_replaced_flag("ghost.moe", FALSE)

    def test_stuck_reset_interlock_window(self, example_spec, example_interlock):
        stuck = StuckResetInterlock(example_interlock, {"long.1.moe": False}, cycles=2)
        inputs = {name: False for name in example_spec.input_signals()}
        stuck.on_cycle_start(0)
        assert stuck.compute_moe(inputs)["long.1.moe"] is False
        stuck.on_cycle_start(1)
        assert stuck.compute_moe(inputs)["long.1.moe"] is False
        stuck.on_cycle_start(2)
        assert stuck.compute_moe(inputs)["long.1.moe"] is True
        stuck.reset()
        stuck.on_cycle_start(0)
        assert stuck.compute_moe(inputs)["long.1.moe"] is False

    def test_stuck_reset_requires_positive_window(self, example_interlock):
        with pytest.raises(ValueError):
            StuckResetInterlock(example_interlock, {"long.1.moe": False}, cycles=0)

    def test_conservative_completion_is_hazard_free_but_slower(
        self, example_arch, example_spec
    ):
        program = completion_contention_program(example_arch, length=30)
        fast = simulate(example_arch, reference_interlock(example_spec), program)
        slow = simulate(
            example_arch,
            ConservativeCompletionInterlock(example_spec, example_arch),
            program,
        )
        assert slow.hazard_free()
        assert slow.num_cycles() > fast.num_cycles()
        assert slow.retired_instructions == fast.retired_instructions


class TestSimulatorBasics:
    def test_single_instruction_flows_through_long_pipe(self, example_arch, example_spec):
        program = Program.from_streams(long=[alu("long", dst=0)], short=[])
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert trace.retired_instructions == 1
        assert trace.hazard_free()
        # Issue at cycle 0, then 3 more stages: writeback from stage 4.
        assert trace.num_cycles() == 5

    def test_single_instruction_short_pipe_is_faster(self, example_arch, example_spec):
        long_prog = Program.from_streams(long=[alu("long", dst=0)], short=[])
        short_prog = Program.from_streams(long=[], short=[alu("short", dst=0)])
        interlock = reference_interlock(example_spec)
        long_trace = simulate(example_arch, interlock, long_prog)
        short_trace = simulate(example_arch, interlock, short_prog)
        assert short_trace.num_cycles() < long_trace.num_cycles()

    def test_store_retires_without_bus(self, example_arch, example_spec):
        program = Program.from_streams(long=[store("long", src=1)], short=[])
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert trace.retired_instructions == 1
        assert trace.hazard_free()

    def test_bubbles_do_not_retire(self, example_arch, example_spec):
        program = Program.from_streams(long=[bubble("long"), alu("long", dst=0)], short=[])
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert trace.retired_instructions == 1
        assert trace.issued_instructions == 1

    def test_wait_instruction_holds_issue(self, example_arch, example_spec):
        with_wait = Program.from_streams(
            long=[wait("long", 3), alu("long", dst=0)], short=[]
        )
        without_wait = Program.from_streams(long=[alu("long", dst=0)], short=[])
        interlock = reference_interlock(example_spec)
        slow = simulate(example_arch, interlock, with_wait)
        fast = simulate(example_arch, interlock, without_wait)
        assert slow.num_cycles() >= fast.num_cycles() + 3
        assert slow.hazard_free()
        assert slow.retired_instructions == 2  # the WAIT retires in place

    def test_dependent_chain_stalls_but_stays_correct(self, example_arch, example_spec):
        program = Program.from_streams(
            long=dependent_chain("long", 10, num_registers=2), short=[]
        )
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert trace.hazard_free()
        assert trace.retired_instructions == 10
        # Dependencies force stalls: visibly more than one cycle per instruction.
        assert trace.num_cycles() > 12

    def test_completion_contention_prefers_short_pipe(self, example_arch, example_spec):
        program = completion_contention_program(example_arch, length=20)
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert trace.hazard_free()
        assert trace.retired_instructions == 40
        # With both pipes completing every cycle the long pipe loses arbitration
        # sometimes, so its completion stage records stall cycles.
        assert trace.stall_cycles("long.4.moe") > 0

    def test_round_robin_arbiter_also_hazard_free(self, example_arch, example_spec):
        program = completion_contention_program(example_arch, length=20)
        config = SimulatorConfig(arbiter="round-robin")
        trace = simulate(example_arch, reference_interlock(example_spec), program, config)
        assert trace.hazard_free()
        assert trace.retired_instructions == 40

    def test_max_cycles_cap(self, example_arch, example_spec):
        # An interlock that never lets anything issue deadlocks the machine;
        # the cap keeps the run finite.
        from repro.expr import FALSE

        dead = ClosedFormInterlock.from_spec(example_spec).with_replaced_flag(
            "long.1.moe", FALSE
        ).with_replaced_flag("short.1.moe", FALSE)
        program = Program.from_streams(long=[alu("long", dst=0)], short=[])
        config = SimulatorConfig(max_cycles=50)
        trace = simulate(example_arch, dead, program, config)
        assert trace.num_cycles() == 50
        assert trace.retired_instructions == 0

    def test_missing_moe_flag_rejected(self, example_arch, example_spec):
        incomplete = ClosedFormInterlock(
            {"long.4.moe": ClosedFormInterlock.from_spec(example_spec).expression_for("long.4.moe")}
        )
        program = Program.from_streams(long=[alu("long", dst=0)], short=[])
        with pytest.raises(RuntimeError):
            simulate(example_arch, incomplete, program)

    def test_stop_on_hazard(self, example_arch, example_spec):
        from repro.faults import FaultInjector

        injector = FaultInjector(example_spec)
        fault = injector.never_stall_fault("long.4.moe")
        program = completion_contention_program(example_arch, length=20)
        config = SimulatorConfig(stop_on_hazard=True)
        trace = simulate(example_arch, fault.interlock, program, config)
        assert trace.hazard_count() >= 1
        assert trace.num_cycles() < 100

    def test_trace_records_have_consistent_shape(self, example_arch, example_spec):
        program = Program.from_streams(long=[alu("long", dst=1)], short=[alu("short", dst=0)])
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        for record in trace.cycles:
            assert set(record.moe) == set(example_arch.moe_signals())
            assert set(example_arch.input_signals()) <= set(record.inputs)
            merged = record.signals()
            assert set(record.moe) <= set(merged)
        assert trace.describe().startswith("Simulation of")

    def test_simulator_reset_between_runs(self, example_arch, example_spec):
        simulator = PipelineSimulator(example_arch, reference_interlock(example_spec))
        program = Program.from_streams(long=[alu("long", dst=0)], short=[])
        first = simulator.run(program)
        # Re-running the same Program object: fetch indices and occupancy reset,
        # so the cycle count is identical.
        second = simulator.run(program)
        assert first.num_cycles() == second.num_cycles()


class TestHazardDetectionWithBrokenInterlocks:
    def test_never_stall_completion_causes_hazards(self, example_arch, example_spec):
        from repro.faults import FaultInjector

        fault = FaultInjector(example_spec).never_stall_fault("long.4.moe")
        program = completion_contention_program(example_arch, length=20)
        trace = simulate(example_arch, fault.interlock, program)
        assert not trace.hazard_free()
        kinds = {hazard.kind for hazard in trace.hazards}
        assert kinds <= {HazardKind.OVERWRITE, HazardKind.LOST_WRITEBACK}

    def test_missing_scoreboard_term_causes_stale_operands(self, example_arch, example_spec):
        # Weaken the long issue stall condition by dropping the register
        # hazard terms entirely.
        from repro.spec import BuilderOptions, SpecBuilder

        optimistic_spec = SpecBuilder(
            example_arch, BuilderOptions(include_scoreboard=False)
        ).build()
        optimistic = ClosedFormInterlock.from_spec(optimistic_spec)
        program = Program.from_streams(
            long=dependent_chain("long", 8, num_registers=2), short=[]
        )
        trace = simulate(example_arch, optimistic, program)
        assert trace.hazard_count(HazardKind.STALE_OPERAND) + trace.hazard_count(
            HazardKind.WAW_VIOLATION
        ) > 0

    def test_broken_lockstep_detected(self, example_arch, example_spec):
        from repro.spec import BuilderOptions, SpecBuilder

        no_lockstep_spec = SpecBuilder(
            example_arch, BuilderOptions(include_lockstep=False)
        ).build()
        loose = ClosedFormInterlock.from_spec(no_lockstep_spec)
        program = Program.from_streams(
            long=[wait("long", 3), alu("long", dst=0)],
            short=[alu("short", dst=1), alu("short", dst=0)],
        )
        trace = simulate(example_arch, loose, program)
        assert trace.hazard_count(HazardKind.LOCKSTEP_BROKEN) > 0

    def test_bad_reset_low_just_delays(self, example_arch, example_spec):
        reference = reference_interlock(example_spec)
        delayed = StuckResetInterlock(
            reference_interlock(example_spec),
            {"long.1.moe": False, "short.1.moe": False},
            cycles=3,
        )
        program = Program.from_streams(long=[alu("long", dst=0)], short=[])
        base = simulate(example_arch, reference, program)
        slow = simulate(example_arch, delayed, program)
        assert slow.retired_instructions == base.retired_instructions
        assert slow.num_cycles() >= base.num_cycles() + 3


class TestWorkloadGenerators:
    def test_generator_is_deterministic_per_seed(self, example_arch):
        first = WorkloadGenerator(example_arch, seed=5).generate(BALANCED)
        second = WorkloadGenerator(example_arch, seed=5).generate(BALANCED)
        assert [i.kind for i in first.streams["long"]] == [
            i.kind for i in second.streams["long"]
        ]
        third = WorkloadGenerator(example_arch, seed=6).generate(BALANCED)
        assert [i.kind for i in first.streams["long"]] != [
            i.kind for i in third.streams["long"]
        ] or [i.dst for i in first.streams["long"]] != [i.dst for i in third.streams["long"]]

    def test_profile_validation(self):
        from repro.workloads import WorkloadProfile

        with pytest.raises(ValueError):
            WorkloadProfile(dependency_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(length=0)

    def test_wait_instructions_only_on_wait_capable_pipes(self, example_arch):
        from repro.workloads import WAIT_HEAVY

        program = WorkloadGenerator(example_arch, seed=0).generate(WAIT_HEAVY)
        assert not any(i.is_wait for i in program.streams["short"])
        assert any(i.is_wait for i in program.streams["long"])

    def test_register_addresses_respect_scoreboard_width(self, example_arch):
        program = WorkloadGenerator(example_arch, seed=0).generate(HAZARD_HEAVY)
        limit = example_arch.scoreboard.num_registers
        for stream in program.streams.values():
            for instruction in stream:
                for address in instruction.source_registers() + instruction.destination_registers():
                    assert 0 <= address < limit

    def test_interrupt_profile_populates_external_inputs(self, firepath_arch):
        from repro.workloads import WorkloadProfile

        profile = WorkloadProfile(length=20, interrupt_rate=0.5)
        program = WorkloadGenerator(firepath_arch, seed=0).generate(profile)
        assert "interrupt" in program.external_inputs
        assert program.external_inputs["interrupt"]

    def test_fixed_streams(self):
        assert len(independent_stream("p", 5)) == 5
        chain = dependent_chain("p", 5, num_registers=4)
        assert all(chain[i].src == chain[i - 1].dst for i in range(1, 5))
        stream = wait_stream("p", 8, wait_every=4)
        assert sum(1 for i in stream if i.is_wait) == 2
        with pytest.raises(ValueError):
            dependent_chain("p", 0)
