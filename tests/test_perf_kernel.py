"""Property-based and regression tests for the performance kernel.

Covers the PR-1 speed work: the bit-parallel compiled evaluator must agree
with :func:`eval_expr` everywhere, the fused quantification operations must
agree with their unfused compositions, and the benchmark runner must stay
runnable as a CI smoke test.
"""

import json
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, compile_expr
from repro.expr import (
    And,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Var,
    all_assignments,
    bitparallel_count,
    bitparallel_find_falsifying,
    bitparallel_satisfiable,
    bitparallel_tautology,
    compile_bitparallel,
    eval_expr,
    pack_bools,
)

VARIABLE_NAMES = ["a", "b", "c", "d", "e", "f", "g", "h"]


def expressions(max_leaves: int = 14):
    """Random expressions over a small alphabet, all connectives included."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
            st.tuples(children, children, children).map(lambda triple: Ite(*triple)),
        ),
        max_leaves=max_leaves,
    )


class TestBitParallelEvaluator:
    @settings(max_examples=80, deadline=None)
    @given(expressions())
    def test_agrees_with_eval_expr_on_every_assignment(self, expr):
        names = sorted(expr.variables())
        compiled = compile_bitparallel(expr)
        brute = [eval_expr(expr, a) for a in all_assignments(names)]
        assert bitparallel_tautology(expr) == all(brute)
        assert bitparallel_satisfiable(expr) == any(brute)
        assert bitparallel_count(expr) == sum(brute)
        for assignment in all_assignments(names):
            assert compiled.evaluate_one(assignment) == eval_expr(expr, assignment)

    @settings(max_examples=40, deadline=None)
    @given(expressions(), st.integers(min_value=1, max_value=150), st.randoms())
    def test_packed_evaluation_matches_rows(self, expr, num_rows, rng):
        names = sorted(expr.variables())
        rows = [
            {name: bool(rng.getrandbits(1)) for name in names} for _ in range(num_rows)
        ]
        compiled = compile_bitparallel(expr)
        columns = {name: pack_bools(row[name] for row in rows) for name in names}
        packed = compiled.evaluate_packed(columns, num_rows)
        for index, row in enumerate(rows):
            bit = (packed[index // 64] >> (index % 64)) & 1
            assert bool(bit) == eval_expr(expr, row)

    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_falsifying_witness_is_genuine(self, expr):
        witness = bitparallel_find_falsifying(expr)
        if witness is None:
            assert bitparallel_tautology(expr)
        else:
            assert eval_expr(expr, witness) is False

    def test_wide_sweep_crosses_word_boundary(self):
        # Seven variables: 128 assignments spread over two 64-bit words.
        expr = Or(*(Var(name) for name in VARIABLE_NAMES[:7]))
        assert not bitparallel_tautology(expr)
        assert bitparallel_count(expr) == (1 << 7) - 1
        assert bitparallel_find_falsifying(expr) == {
            name: False for name in VARIABLE_NAMES[:7]
        }


class TestFusedQuantification:
    @settings(max_examples=60, deadline=None)
    @given(expressions(10), expressions(10), st.data())
    def test_and_exists_agrees_with_and_then_exists(self, left, right, data):
        quantified = data.draw(
            st.lists(st.sampled_from(VARIABLE_NAMES), max_size=4, unique=True)
        )
        manager = BddManager(VARIABLE_NAMES)
        left_node = compile_expr(manager, left)
        right_node = compile_expr(manager, right)
        fused = manager.and_exists(left_node, right_node, quantified)
        unfused = manager.exists(manager.and_(left_node, right_node), quantified)
        assert fused == unfused

    @settings(max_examples=60, deadline=None)
    @given(expressions(10), st.data())
    def test_multi_variable_pass_agrees_with_one_at_a_time(self, expr, data):
        quantified = data.draw(
            st.lists(st.sampled_from(VARIABLE_NAMES), max_size=4, unique=True)
        )
        manager = BddManager(VARIABLE_NAMES)
        node = compile_expr(manager, expr)
        exists_once = manager.exists(node, quantified)
        forall_once = manager.forall(node, quantified)
        exists_seq, forall_seq = node, node
        for name in quantified:
            exists_seq = manager.or_(
                manager.restrict(exists_seq, name, False),
                manager.restrict(exists_seq, name, True),
            )
            forall_seq = manager.and_(
                manager.restrict(forall_seq, name, False),
                manager.restrict(forall_seq, name, True),
            )
        assert exists_once == exists_seq
        assert forall_once == forall_seq


class TestIterativeKernel:
    def test_ite_depth_beyond_python_recursion_limit(self):
        # A conjunction chain deeper than the recursion limit: the explicit
        # work stack must walk it without raising RecursionError.
        depth = sys.getrecursionlimit() + 500
        manager = BddManager()
        conjunction = manager.and_all(manager.var(f"x{i}") for i in range(depth))
        assert manager.dag_size(conjunction) == depth
        assert manager.not_(manager.not_(conjunction)) == conjunction

    def test_commuted_calls_share_cache_entries(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.and_(x, y) == manager.and_(y, x)
        assert manager.or_(x, y) == manager.or_(y, x)
        before = len(manager._op_cache)
        manager.and_(y, x)  # must be a pure cache hit
        assert len(manager._op_cache) == before

    def test_find_difference(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.find_difference(x, x) is None
        witness = manager.find_difference(manager.and_(x, y), x)
        assert witness is not None
        assert witness["x"] is True and witness["y"] is False


class TestAllAssignmentsReuse:
    def test_reuse_yields_the_same_sequence(self):
        names = ["c", "a", "b"]
        fresh = list(all_assignments(names))
        reused = [dict(a) for a in all_assignments(names, reuse=True)]
        assert fresh == reused

    def test_reuse_mutates_one_dict(self):
        seen = {id(a) for a in all_assignments(["x", "y"], reuse=True)}
        assert len(seen) == 1


class TestBenchRunner:
    def test_quick_smoke_and_regression_gate(self, tmp_path):
        from repro.perf import check_against_baseline, run_benchmarks, write_results

        results = run_benchmarks(names=["bmc_stuck_reset"], quick=True)
        assert results["bmc_stuck_reset"].seconds >= 0.0
        baseline = tmp_path / "baseline.json"
        write_results(results, str(baseline))
        payload = json.loads(baseline.read_text())
        assert "bmc_stuck_reset" in payload["scenarios"]
        # Against its own timings nothing regresses ...
        assert check_against_baseline(results, str(baseline), tolerance=1000.0) == []
        # ... and an absurdly tight tolerance flags the scenario (slack
        # disabled so a milliseconds-scale excess is not forgiven).
        failures = check_against_baseline(
            results, str(baseline), tolerance=1e-9, slack=0.0
        )
        assert failures and "bmc_stuck_reset" in failures[0]
        # With the default absolute slack the same millisecond-scale excess
        # is noise, not a regression.
        assert check_against_baseline(results, str(baseline), tolerance=1e-9) == []

    def test_unknown_scenario_rejected(self):
        from repro.perf import run_benchmarks

        with pytest.raises(ValueError):
            run_benchmarks(names=["no-such-scenario"])


class TestAllSatOrderRegression:
    def test_all_sat_follows_manager_level_order(self):
        # Declared order z, y, x is the reverse of the alphabetical order;
        # enumeration must walk the BDD top-down by level, not by name.
        manager = BddManager(["z", "y", "x"])
        f = manager.and_(manager.var("x"), manager.var("y"))
        models = list(manager.all_sat(f, over=["x", "y", "z"]))
        assert len(models) == 2
        assert all(model["x"] and model["y"] for model in models)
        assert {model["z"] for model in models} == {False, True}

    def test_all_sat_default_support_non_alphabetical(self):
        manager = BddManager(["q2", "q10"])  # lexicographically q10 < q2
        f = manager.and_(manager.var("q2"), manager.var("q10"))
        models = list(manager.all_sat(f))
        assert models == [{"q2": True, "q10": True}]
