"""Tests for the ROBDD manager, the expression compiler and the ordering helpers."""

import pytest

from repro.bdd import (
    BddManager,
    ExprBddContext,
    compile_expr,
    interleaved_order,
    occurrence_order,
    order_from_exprs,
    stage_major_order,
)
from repro.expr import And, Iff, Implies, Not, Or, Var, all_assignments, eval_expr, vars_


class TestManagerBasics:
    def test_terminals(self):
        manager = BddManager()
        assert manager.is_true(manager.true())
        assert manager.is_false(manager.false())
        assert manager.true() != manager.false()

    def test_variable_nodes_are_canonical(self):
        manager = BddManager()
        assert manager.var("x") == manager.var("x")
        assert manager.var("x") != manager.var("y")

    def test_declare_is_idempotent(self):
        manager = BddManager()
        level = manager.declare("x")
        assert manager.declare("x") == level
        assert manager.level_of("x") == level
        assert manager.var_at_level(level) == "x"

    def test_explicit_order_respected(self):
        manager = BddManager(variable_order=["b", "a"])
        assert manager.variable_order() == ["b", "a"]
        assert manager.level_of("b") < manager.level_of("a")

    def test_negation_is_involution(self):
        manager = BddManager()
        x = manager.var("x")
        assert manager.not_(manager.not_(x)) == x

    def test_and_or_reduce_to_terminals(self):
        manager = BddManager()
        x = manager.var("x")
        assert manager.and_(x, manager.false()) == manager.false()
        assert manager.and_(x, manager.true()) == x
        assert manager.or_(x, manager.true()) == manager.true()
        assert manager.or_(x, manager.false()) == x
        assert manager.and_(x, manager.not_(x)) == manager.false()
        assert manager.or_(x, manager.not_(x)) == manager.true()

    def test_equivalence_is_canonical(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        demorgan_left = manager.not_(manager.and_(x, y))
        demorgan_right = manager.or_(manager.not_(x), manager.not_(y))
        assert manager.equivalent(demorgan_left, demorgan_right)

    def test_xor_iff_implies(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.equivalent(manager.not_(manager.xor(x, y)), manager.iff(x, y))
        assert manager.equivalent(
            manager.implies(x, y), manager.or_(manager.not_(x), y)
        )

    def test_and_all_or_all(self):
        manager = BddManager()
        nodes = [manager.var(name) for name in "abc"]
        conjunction = manager.and_all(nodes)
        disjunction = manager.or_all(nodes)
        assert manager.evaluate(conjunction, {"a": True, "b": True, "c": True})
        assert not manager.evaluate(conjunction, {"a": True, "b": False, "c": True})
        assert manager.evaluate(disjunction, {"a": False, "b": False, "c": True})
        assert not manager.evaluate(disjunction, {"a": False, "b": False, "c": False})


class TestManagerOperations:
    def test_restrict(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.and_(x, y)
        assert manager.restrict(f, "x", True) == y
        assert manager.restrict(f, "x", False) == manager.false()

    def test_compose(self):
        manager = BddManager()
        x, y, z = manager.var("x"), manager.var("y"), manager.var("z")
        f = manager.or_(x, y)
        composed = manager.compose(f, "x", manager.and_(y, z))
        expected = manager.or_(manager.and_(y, z), y)
        assert composed == expected

    def test_compose_many_is_simultaneous(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.and_(x, manager.not_(y))
        swapped = manager.compose_many(f, {"x": y, "y": x})
        expected = manager.and_(y, manager.not_(x))
        assert swapped == expected

    def test_compose_with_earlier_levels_stays_canonical(self):
        # Regression: substituting a function whose variables sit at
        # *earlier* levels than the composed node used to build out-of-order
        # nodes, silently breaking canonicity (equal functions stopped
        # sharing one node, which defeats pointer-equality checks).
        manager = BddManager(["a", "b", "rtm", "m"])
        f = manager.and_(manager.var("rtm"), manager.not_(manager.var("m")))
        g = manager.and_(manager.var("a"), manager.var("b"))
        composed = manager.compose(f, "m", g)
        expected = manager.and_(manager.var("rtm"), manager.not_(g))
        assert composed == expected
        composed_many = manager.compose_many(f, {"m": g})
        assert composed_many == expected

    def test_and_exists_is_fused_relational_product(self):
        manager = BddManager()
        x, y, z = manager.var("x"), manager.var("y"), manager.var("z")
        transition = manager.and_(x, manager.or_(y, z))
        constraint = manager.implies(y, z)
        fused = manager.and_exists(transition, constraint, ["y"])
        unfused = manager.exists(manager.and_(transition, constraint), ["y"])
        assert fused == unfused
        assert manager.and_exists(x, manager.not_(x), ["x"]) == manager.false()

    def test_and_exists_degenerates_to_conjunction(self):
        # Regression: when every quantified level sits above both operand
        # cones, the fused product normalises to a plain AND task; that
        # packed key must be dispatched to the binary apply loop, not the
        # quantification expander.
        manager = BddManager(["q", "x", "y"])
        x, y = manager.var("x"), manager.var("y")
        f = manager.or_(x, y)
        g = manager.implies(x, y)
        assert manager.and_exists(f, g, ["q"]) == manager.and_(f, g)

    def test_exists_forall(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.and_(x, y)
        assert manager.exists(f, ["x"]) == y
        assert manager.forall(f, ["x"]) == manager.false()
        g = manager.or_(x, y)
        assert manager.exists(g, ["x"]) == manager.true()
        assert manager.forall(g, ["x"]) == y

    def test_evaluate_requires_assignment(self):
        manager = BddManager()
        f = manager.and_(manager.var("x"), manager.var("y"))
        with pytest.raises(KeyError):
            manager.evaluate(f, {"x": True})

    def test_support(self):
        manager = BddManager()
        x, y, z = manager.var("x"), manager.var("y"), manager.var("z")
        f = manager.ite(x, y, y)  # z unused, y only
        assert manager.support(f) == frozenset({"y"})
        assert manager.support(manager.and_(x, z)) == frozenset({"x", "z"})
        assert manager.support(manager.true()) == frozenset()

    def test_sat_count(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.sat_count(manager.and_(x, y)) == 1
        assert manager.sat_count(manager.or_(x, y)) == 3
        assert manager.sat_count(manager.true(), over=["x", "y"]) == 4
        assert manager.sat_count(manager.false(), over=["x", "y"]) == 0
        assert manager.sat_count(x, over=["x", "y"]) == 2

    def test_sat_count_requires_support_subset(self):
        manager = BddManager()
        f = manager.and_(manager.var("x"), manager.var("y"))
        with pytest.raises(ValueError):
            manager.sat_count(f, over=["x"])

    def test_pick_one(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.and_(x, manager.not_(y))
        model = manager.pick_one(f)
        assert model == {"x": True, "y": False}
        assert manager.pick_one(manager.false()) is None

    def test_all_sat(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        f = manager.or_(x, y)
        models = list(manager.all_sat(f, over=["x", "y"]))
        assert len(models) == 3
        assert {"x": False, "y": False} not in models

    def test_dag_size(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.dag_size(manager.true()) == 0
        assert manager.dag_size(x) == 1
        assert manager.dag_size(manager.and_(x, y)) == 2


class TestKernelLifecycle:
    """Public-API smoke tests for GC, reordering and the health counters.

    The heavier invariants (sweep hooks, sifting quality, the reference
    cross-check) live in ``test_bdd_array_kernel.py``.
    """

    def test_gc_keeps_protected_functions(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        kept = manager.protect(manager.xor(x, y))
        manager.iff(x, y)  # garbage
        reclaimed = manager.gc()
        assert reclaimed > 0
        assert manager.evaluate(kept, {"x": True, "y": False})
        assert not manager.evaluate(kept, {"x": True, "y": True})

    def test_reorder_preserves_semantics(self):
        manager = BddManager(["a", "b", "c", "d"])
        f = manager.protect(
            manager.or_(
                manager.and_(manager.var("a"), manager.var("c")),
                manager.and_(manager.var("b"), manager.var("d")),
            )
        )
        before = manager.num_nodes()
        manager.reorder()
        assert manager.num_nodes() <= before
        for assignment in all_assignments(["a", "b", "c", "d"]):
            expected = (assignment["a"] and assignment["c"]) or (
                assignment["b"] and assignment["d"]
            )
            assert manager.evaluate(f, assignment) == expected

    def test_stats_snapshot(self):
        manager = BddManager()
        manager.and_(manager.var("a"), manager.var("b"))
        stats = manager.stats()
        assert stats.live_nodes == manager.num_nodes()
        assert stats.num_vars == 2
        assert stats.gc_runs == 0 and stats.reorder_runs == 0
        assert "unique table:" in stats.describe()


class TestExprCompiler:
    def test_compile_matches_evaluation(self):
        a, b, c = vars_("a", "b", "c")
        expr = Iff(Implies(a, b), Or(Not(c), And(a, b)))
        manager = BddManager()
        node = compile_expr(manager, expr)
        for assignment in all_assignments(["a", "b", "c"]):
            assert manager.evaluate(node, assignment) == eval_expr(expr, assignment)

    def test_context_validity_and_satisfiability(self):
        a, b = vars_("a", "b")
        context = ExprBddContext()
        assert context.is_valid(Or(a, Not(a)))
        assert not context.is_valid(a)
        assert context.is_satisfiable(And(a, b))
        assert not context.is_satisfiable(And(a, Not(a)))

    def test_context_equivalence(self):
        a, b, c = vars_("a", "b", "c")
        context = ExprBddContext()
        assert context.are_equivalent(And(a, Or(b, c)), Or(And(a, b), And(a, c)))
        assert not context.are_equivalent(a, b)

    def test_counterexample_and_witness(self):
        a, b = vars_("a", "b")
        context = ExprBddContext()
        counterexample = context.counterexample(Implies(a, b))
        assert counterexample is not None
        assert counterexample["a"] is True and counterexample["b"] is False
        assert context.counterexample(Or(a, Not(a))) is None
        witness = context.witness(And(a, Not(b)))
        assert witness == {"a": True, "b": False}
        assert context.witness(And(a, Not(a))) is None


class TestOrdering:
    def test_order_from_exprs_is_sorted(self):
        a, b, z = vars_("a", "b", "z")
        assert order_from_exprs([z & a, b]) == ["a", "b", "z"]

    def test_occurrence_order_keeps_first_appearance(self):
        a, b, c = vars_("a", "b", "c")
        assert occurrence_order([c & a, b | a]) == ["c", "a", "b"]

    def test_interleaved_order(self):
        assert interleaved_order([["a1", "a2"], ["b1", "b2", "b3"]]) == [
            "a1",
            "b1",
            "a2",
            "b2",
            "b3",
        ]

    def test_stage_major_order_deduplicates(self):
        order = stage_major_order([["x", "y"], ["y", "z"]])
        assert order == ["x", "y", "z"]
