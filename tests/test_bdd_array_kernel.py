"""Array-kernel tests: GC, sifting, stats and a cross-check against a reference engine.

The manager in ``repro.bdd.manager`` is a flat struct-of-arrays kernel with
packed-integer cache keys, mark-and-sweep garbage collection and sifting
reordering.  These tests pin down the properties that make it safe to use
underneath :class:`~repro.symbolic.SymbolicFunction`:

* semantic agreement with an independent dictionary-based ROBDD (the shape
  of the engine this kernel replaced), checked on random 12-variable
  formulas — including *structural* agreement (canonical dag sizes);
* garbage collection never disturbs live (protected) functions and the
  memo tables never serve stale entries after a sweep;
* a full derive → sweep → re-derive cycle reproduces identical node ids;
* sifting never increases the node count and keeps handles valid;
* the health counters exposed by :meth:`BddManager.stats`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.archs import load_architecture
from repro.bdd import BddManager, FALSE_NODE, TRUE_NODE, compile_expr
from repro.bdd.manager import _np
from repro.expr import And, Iff, Implies, Not, Or, Var, all_assignments, eval_expr
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.symbolic import SymbolicContext

VARIABLE_NAMES = [f"v{i:02d}" for i in range(12)]

NUMPY_MODES = [False] + ([True] if _np is not None else [])


# -- a minimal reference engine ----------------------------------------------------
#
# Terminals are the strings "F"/"T"; an internal node is the tuple
# ``(level, lo, hi)``.  Reduction (lo == hi collapse) plus Python's
# structural tuple equality gives canonicity for free, so two semantically
# equal functions build the identical tuple tree — the same invariant the
# array kernel maintains with its unique tables, reached by an entirely
# independent route.


class RefBdd:
    FALSE = "F"
    TRUE = "T"

    def __init__(self, order):
        self.order = list(order)
        self.level = {name: i for i, name in enumerate(order)}

    def var(self, name):
        return (self.level[name], self.FALSE, self.TRUE)

    def _top(self, node):
        return node[0] if isinstance(node, tuple) else 2**31

    def _cofactors(self, node, level):
        if isinstance(node, tuple) and node[0] == level:
            return node[1], node[2]
        return node, node

    def apply(self, op, a, b, memo=None):
        if memo is None:
            memo = {}
        key = (a, b)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if a in ("F", "T") and b in ("F", "T"):
            va, vb = a == "T", b == "T"
            result = self.TRUE if op(va, vb) else self.FALSE
        else:
            level = min(self._top(a), self._top(b))
            a0, a1 = self._cofactors(a, level)
            b0, b1 = self._cofactors(b, level)
            lo = self.apply(op, a0, b0, memo)
            hi = self.apply(op, a1, b1, memo)
            result = lo if lo == hi else (level, lo, hi)
        memo[key] = result
        return result

    def not_(self, node, memo=None):
        if memo is None:
            memo = {}
        if node == self.FALSE:
            return self.TRUE
        if node == self.TRUE:
            return self.FALSE
        hit = memo.get(node)
        if hit is not None:
            return hit
        result = (node[0], self.not_(node[1], memo), self.not_(node[2], memo))
        memo[node] = result
        return result

    def compile(self, expr):
        if isinstance(expr, Var):
            return self.var(expr.name)
        if isinstance(expr, Not):
            return self.not_(self.compile(expr.operand))
        if isinstance(expr, And):
            result = self.TRUE
            for operand in expr.operands:
                result = self.apply(lambda x, y: x and y, result, self.compile(operand))
            return result
        if isinstance(expr, Or):
            result = self.FALSE
            for operand in expr.operands:
                result = self.apply(lambda x, y: x or y, result, self.compile(operand))
            return result
        if isinstance(expr, Implies):
            lhs = self.compile(expr.antecedent)
            rhs = self.compile(expr.consequent)
            return self.apply(lambda x, y: (not x) or y, lhs, rhs)
        if isinstance(expr, Iff):
            lhs, rhs = self.compile(expr.left), self.compile(expr.right)
            return self.apply(lambda x, y: x == y, lhs, rhs)
        raise TypeError(f"unsupported expression {expr!r}")

    def dag_size(self, node):
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if not isinstance(n, tuple) or n in seen:
                continue
            seen.add(n)
            stack.append(n[1])
            stack.append(n[2])
        return len(seen)

    def sat_count(self, node, num_vars):
        memo = {}

        def count(n):
            if n == self.FALSE:
                return 0, num_vars
            if n == self.TRUE:
                return 1, num_vars
            hit = memo.get(n)
            if hit is None:
                level, lo, hi = n
                clo, dlo = count(lo)
                chi, dhi = count(hi)
                total = clo * 2 ** (dlo - level - 1) + chi * 2 ** (dhi - level - 1)
                hit = memo[n] = (total, level)
            return hit

        total, depth = count(node)
        return total * 2**depth


def expressions(max_leaves: int = 12):
    """Random formulas over a 12-variable alphabet (mirrors test_expr_hypothesis)."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
        ),
        max_leaves=max_leaves,
    )


class TestReferenceCrossCheck:
    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_array_kernel_matches_dict_engine(self, expr):
        manager = BddManager(VARIABLE_NAMES)
        node = compile_expr(manager, expr)
        ref = RefBdd(VARIABLE_NAMES)
        ref_node = ref.compile(expr)
        # Canonical form agreement: identical dag size under the same order.
        assert manager.dag_size(node) == ref.dag_size(ref_node)
        # Model count agreement over the full 12-variable space.
        assert manager.sat_count(node, over=VARIABLE_NAMES) == ref.sat_count(
            ref_node, len(VARIABLE_NAMES)
        )

    @settings(max_examples=30, deadline=None)
    @given(expressions(max_leaves=8))
    def test_evaluation_round_trip(self, expr):
        manager = BddManager(VARIABLE_NAMES)
        node = compile_expr(manager, expr)
        names = sorted(expr.variables())
        for assignment in all_assignments(names):
            expected = eval_expr(expr, assignment)
            if manager.support(node):
                assert manager.evaluate(node, assignment) == expected
            else:
                assert manager.is_true(node) == expected


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
class TestGarbageCollection:
    def _junk(self, manager, rounds=6):
        """Build and abandon a pile of intermediate nodes."""
        xs = [manager.var(f"v{i:02d}") for i in range(8)]
        acc = manager.true()
        for offset in range(rounds):
            for i, x in enumerate(xs):
                acc = manager.xor(acc, manager.and_(x, xs[(i + offset) % len(xs)]))
        return acc

    def test_gc_reclaims_dead_nodes_and_keeps_roots(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        root = manager.protect(self._junk(manager))
        expected = {
            tuple(sorted(a.items())): manager.evaluate(root, a)
            for a in all_assignments([f"v{i:02d}" for i in range(8)])
        }
        before = manager.num_nodes()
        reclaimed = manager.gc()
        assert reclaimed > 0
        assert manager.num_nodes() == before - reclaimed
        # The protected cone survived intact: exactly the root's dag plus terminals.
        assert manager.num_nodes() == manager.dag_size(root) + 2
        for assignment, value in expected.items():
            assert manager.evaluate(root, dict(assignment)) == value

    def test_release_makes_nodes_collectable(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        root = manager.protect(self._junk(manager))
        manager.gc()
        survivors = manager.num_nodes()
        manager.release(root)
        manager.gc()
        assert manager.num_nodes() < survivors
        assert manager.num_nodes() == 2  # only terminals remain

    def test_extra_roots_pin_without_protection(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        f = manager.and_(manager.var("a"), manager.var("b"))
        manager.gc(extra_roots=[f])
        assert manager.evaluate(f, {"a": True, "b": True})
        assert not manager.evaluate(f, {"a": True, "b": False})

    def test_unique_table_stays_canonical_after_sweep(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        a, b = manager.var("a"), manager.var("b")
        f = manager.protect(manager.and_(a, b))
        self._junk(manager)
        manager.gc()
        # Rebuilding the same function must land on the same node id.
        assert manager.and_(manager.var("a"), manager.var("b")) == f
        assert manager.not_(manager.not_(f)) == f

    def test_memo_tables_never_serve_stale_entries(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        g = manager.protect(manager.or_(manager.and_(a, b), c))
        ng = manager.not_(g)  # populates the negation cache; not protected
        manager.gc()
        # ng was reclaimed; recomputing the negation must rebuild it, and
        # the involution property must still hold.
        ng2 = manager.not_(g)
        assert manager.not_(ng2) == g
        assert manager.equivalent(manager.or_(g, ng2), manager.true())
        del ng

    def test_sweep_hooks_see_alive_predicate(self, use_numpy):
        manager = BddManager(use_numpy=use_numpy)
        observed = {}
        live = manager.protect(manager.and_(manager.var("a"), manager.var("b")))
        dead = manager.or_(manager.var("a"), manager.var("c"))
        manager.add_sweep_hook(
            lambda alive: observed.update(live=alive(live), dead=alive(dead))
        )
        manager.gc()
        assert observed == {"live": True, "dead": False}


class TestDeriveSweepRederive:
    def test_derivation_survives_collection_and_is_reproducible(self):
        spec = build_functional_spec(load_architecture("dac2002-example"))
        first = symbolic_most_liberal(spec)
        context = first.context
        assert context is not None
        moe_nodes = {moe: fn.node for moe, fn in first.moe_functions.items()}
        floor = sum(
            context.manager.dag_size(node) for node in moe_nodes.values()
        )

        reclaimed = context.collect()
        assert reclaimed > 0  # the fixed-point iteration leaves garbage behind

        # Live handles protect their cones: every closed form still evaluates.
        for moe, fn in first.moe_functions.items():
            assert fn.node == moe_nodes[moe]
        # After the sweep the store holds little beyond the retained results
        # (shared spec/condition cones may also be pinned by the context).
        assert context.manager.num_nodes() <= max(int(floor * 4), 256)

        second = symbolic_most_liberal(spec, context=context)
        for moe, fn in second.moe_functions.items():
            # Canonicity across the sweep: the re-derived closed forms land
            # on the very same node ids the first derivation produced.
            assert fn.node == moe_nodes[moe]
        assert second.feed_forward == first.feed_forward


class TestReordering:
    def _interleaving_victim(self, manager, pairs=6):
        """A function whose size is exponential in a bad (blocked) order."""
        terms = [
            manager.and_(manager.var(f"x{i}"), manager.var(f"y{i}"))
            for i in range(pairs)
        ]
        return manager.or_all(terms)

    def test_sifting_never_increases_node_count(self, pairs=6):
        order = [f"x{i}" for i in range(pairs)] + [f"y{i}" for i in range(pairs)]
        manager = BddManager(order)
        root = manager.protect(self._interleaving_victim(manager, pairs))
        before = manager.num_nodes()
        swaps = manager.reorder()
        assert manager.num_nodes() <= before
        assert swaps > 0
        # The blocked order is exponential (2**pairs-ish); the interleaved
        # optimum is linear.  Sifting must find a dramatic improvement.
        assert manager.dag_size(root) <= 3 * pairs
        for i in range(pairs):
            assignment = {name: False for name in order}
            assignment[f"x{i}"] = assignment[f"y{i}"] = True
            assert manager.evaluate(root, assignment)
        assert not manager.evaluate(root, {name: False for name in order})

    def test_reorder_keeps_unprotected_results_of_protected_roots(self):
        manager = BddManager(["x0", "x1", "y0", "y1"])
        f = manager.protect(self._interleaving_victim(manager, 2))
        g = manager.protect(manager.xor(manager.var("x0"), manager.var("y1")))
        manager.reorder()
        # Ids are stable across swaps: both handles still denote their functions.
        assert manager.evaluate(f, {"x0": True, "y0": True, "x1": False, "y1": False})
        assert manager.evaluate(g, {"x0": True, "y1": False, "x1": False, "y0": False})
        assert manager.equivalent(manager.xor(f, f), manager.false())

    def test_auto_reorder_triggers_and_postpone_inhibits(self):
        order = [f"x{i}" for i in range(7)] + [f"y{i}" for i in range(7)]
        manager = BddManager(order, auto_reorder_threshold=40)
        with manager.postpone_reorder():
            self._interleaving_victim(manager, 7)
            assert manager.stats().reorder_runs == 0
        root = manager.protect(self._interleaving_victim(manager, 7))
        assert manager.stats().reorder_runs >= 1
        assert manager.dag_size(root) <= 21


class TestStatsAndHeuristics:
    def test_stats_counters_are_consistent(self):
        manager = BddManager()
        f = manager.and_(manager.var("a"), manager.var("b"))
        manager.and_(manager.var("a"), manager.var("b"))  # memo hit
        stats = manager.stats()
        assert stats.live_nodes == manager.num_nodes()
        assert stats.allocated_slots == stats.live_nodes + stats.free_slots
        assert stats.num_vars == 2
        assert stats.unique_entries == manager.num_nodes() - 2
        assert 0.0 <= stats.hit_rate <= 1.0
        payload = stats.as_dict()
        assert payload["live_nodes"] == stats.live_nodes
        assert set(payload) >= {
            "live_nodes",
            "unique_entries",
            "load_factor",
            "hit_rate",
            "gc_runs",
            "reorder_runs",
        }
        text = stats.describe()
        assert "nodes:" in text and "gc:" in text
        manager.protect(f)
        manager.gc()
        assert manager.stats().gc_runs == 1

    def test_density(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        assert manager.density(manager.true()) == 1.0
        assert manager.density(manager.false()) == 0.0
        assert manager.density(x) == 0.5
        assert manager.density(manager.and_(x, y)) == 0.25
        assert manager.density(manager.or_(x, y)) == 0.75
        assert manager.density(manager.not_(manager.and_(x, y))) == 0.75

    def test_literal_cube_and_clause_fast_paths(self):
        manager = BddManager()
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        nb = manager.not_(b)
        cube = manager.and_all([a, nb, c])
        assert cube == manager.and_(manager.and_(a, nb), c)
        assert manager.and_all([a, manager.not_(a)]) == FALSE_NODE
        clause = manager.or_all([a, nb, c])
        assert clause == manager.or_(manager.or_(a, nb), c)
        assert manager.or_all([a, manager.not_(a)]) == TRUE_NODE
        # Non-literal operands fall back to the general apply loop.
        mixed = manager.and_all([a, manager.or_(b, c)])
        assert manager.equivalent(mixed, manager.and_(a, manager.or_(b, c)))

    def test_symbolic_context_compile_cache_swept(self):
        context = SymbolicContext()
        expr = And(Var("a"), Or(Var("b"), Not(Var("c"))))
        node = context.lift(expr).node  # handle dropped immediately
        del node
        context.collect()
        lifted = context.lift(expr)
        assert lifted.evaluate({"a": True, "b": False, "c": False})
        assert not lifted.evaluate({"a": False, "b": True, "c": True})
