"""Tests for the VHDL expression printer (repro.expr.printer.to_vhdl)."""

from repro.expr import FALSE, TRUE, Iff, Implies, Ite, Not, Var, parse_expr, to_vhdl


class TestVhdlOperators:
    def test_variable(self):
        assert to_vhdl(Var("moe_long_1")) == "moe_long_1"

    def test_constants(self):
        assert to_vhdl(TRUE) == "'1'"
        assert to_vhdl(FALSE) == "'0'"

    def test_negation(self):
        assert to_vhdl(~Var("a")) == "not a"

    def test_negation_of_conjunction_is_parenthesised(self):
        text = to_vhdl(~(Var("a") & Var("b")))
        assert text == "not (a and b)"

    def test_and_or_keywords(self):
        assert to_vhdl(Var("a") & Var("b")) == "a and b"
        assert to_vhdl(Var("a") | Var("b")) == "a or b"

    def test_mixed_and_or_requires_parentheses(self):
        # VHDL rejects `a and b or c`; the printer must parenthesise.
        text = to_vhdl(parse_expr("a & b | c"))
        assert text == "(a and b) or c"

    def test_or_inside_and_is_parenthesised(self):
        text = to_vhdl(parse_expr("a & (b | c)"))
        assert text == "a and (b or c)"

    def test_nested_same_operator_keeps_flat_rendering(self):
        text = to_vhdl(parse_expr("a & b & c"))
        assert text == "a and b and c"

    def test_implication_rewritten(self):
        text = to_vhdl(Implies(Var("req"), Var("stall")))
        assert text == "(not (req)) or (stall)"

    def test_iff_uses_equality(self):
        text = to_vhdl(Iff(Var("a"), Var("b")))
        assert text == "(a) = (b)"

    def test_ite_uses_when_else(self):
        text = to_vhdl(Ite(Var("sel"), Var("x"), Var("y")))
        assert text == "(x) when (sel) else (y)"

    def test_not_literal_inside_and_is_legal(self):
        text = to_vhdl(parse_expr("a & !b"))
        assert text == "a and not b"


class TestVhdlBalancedParentheses:
    def test_parentheses_balance_on_large_expression(self):
        expr = parse_expr("(a & !b | c) & (d | e & !f) | !(g & h)")
        text = to_vhdl(expr)
        assert text.count("(") == text.count(")")
        for token in ("&&", "||", "!", "<->", "->"):
            assert token not in text
