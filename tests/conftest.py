"""Shared fixtures: small architectures and their specifications.

The example architecture is instantiated with a reduced register count in
most tests; the method is independent of the scoreboard width and the
smaller expansion keeps BDDs and expression trees quick to build.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.archs import (
    example_architecture,
    firepath_like_architecture,
    risc5_architecture,
)
from repro.pipeline.interlock import ClosedFormInterlock
from repro.spec import build_functional_spec, symbolic_most_liberal

# Shared CI runners are slow and noisy: wall-clock deadlines flake and a
# full example budget wastes matrix minutes.  The "ci" profile (loaded
# whenever CI=1, which GitHub Actions sets) disables deadlines and trims
# the example count; local runs keep hypothesis defaults apart from the
# deadline, which the BDD-heavy properties routinely exceed on cold
# caches.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture(scope="session")
def example_arch():
    """The paper's Figure 1 architecture with a 2-register scoreboard."""
    return example_architecture(num_registers=2)


@pytest.fixture(scope="session")
def example_arch_full():
    """The paper's Figure 1 architecture with the full 8-register scoreboard."""
    return example_architecture()


@pytest.fixture(scope="session")
def example_spec(example_arch):
    """Functional specification of the small example architecture."""
    return build_functional_spec(example_arch)


@pytest.fixture(scope="session")
def example_spec_full(example_arch_full):
    """Functional specification of the full example architecture."""
    return build_functional_spec(example_arch_full)


@pytest.fixture(scope="session")
def example_derivation(example_spec):
    """Symbolic fixed-point derivation for the small example architecture."""
    return symbolic_most_liberal(example_spec)


@pytest.fixture(scope="session")
def example_interlock(example_derivation):
    """Maximum-performance closed-form interlock for the example architecture."""
    return ClosedFormInterlock.from_derivation(example_derivation)


@pytest.fixture(scope="session")
def risc_arch():
    """The single-pipe five-stage RISC architecture with 4 registers."""
    return risc5_architecture(num_registers=4)


@pytest.fixture(scope="session")
def risc_spec(risc_arch):
    """Functional specification of the RISC architecture."""
    return build_functional_spec(risc_arch)


@pytest.fixture(scope="session")
def firepath_arch():
    """A reduced FirePath-like architecture (shallower pipes, 4 registers)."""
    return firepath_like_architecture(num_registers=4, deep_pipe_stages=5)


@pytest.fixture(scope="session")
def firepath_spec(firepath_arch):
    """Functional specification of the reduced FirePath-like architecture."""
    return build_functional_spec(firepath_arch)
