"""RPL007 true positive: a stage hand-rolls its own wall-clock timing."""

import time


def _stage_faults(job, context):
    # The stage loop already wraps this in a span and records
    # repro_stage_seconds — this pair is a second, drifting timing.
    start = time.perf_counter()
    outcome = run_fault_campaign(job, context)
    outcome.seconds = time.perf_counter() - start
    return outcome


def stage_analysis(job, context):
    began = time.monotonic()
    report = analyze(job, context)
    report.details["seconds"] = time.monotonic() - began
    return report


def run_fault_campaign(job, context):
    return context


def analyze(job, context):
    return context
