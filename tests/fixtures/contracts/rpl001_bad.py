"""RPL001 true positive: raw node ids parked where the GC can't see them."""

GLOBAL_NODE = manager.and_(f, g)  # noqa: F821  (lint fixture, never imported)


class Checker:
    def __init__(self, manager, f, g):
        self.cached = manager.or_(f, g)
        self.inverse: int = manager.not_(f)
