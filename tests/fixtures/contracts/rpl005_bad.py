"""RPL005 true positives: blocking calls sitting directly in coroutines."""

import subprocess
import time


async def poll(path):
    time.sleep(0.5)
    return path.read_text()


async def shell_out(cmd):
    return subprocess.run(cmd, capture_output=True)


async def fetch(url):
    return urlopen(url)  # noqa: F821  (lint fixture, never imported)
