"""RPL006 clean: the runner thread publishes through the loop hop."""

import functools


class VerificationService:
    def _execute(self, loop, record, spec):
        post = functools.partial(loop.call_soon_threadsafe)
        post(self._transition, record, "running")
        result = spec.run()
        post(self._finalize, record, result)
        return result

    def _loop_side(self, record):
        # Not a runner method — loop-thread code mutates freely.
        record.state = "done"
        self._jobs[record.key] = record
        self._transition(record, "done")
