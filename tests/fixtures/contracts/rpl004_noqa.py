"""RPL004 suppressed: the unlisted read is deliberate and silenced."""

STAGE_DEPENDENCIES = {
    "properties": ("arch",),
}


def _stage_properties(job, arch):
    # workload_seed only feeds a log line here, never the result.
    return (job.arch, job.workload_seed)  # repro: noqa[RPL004]
