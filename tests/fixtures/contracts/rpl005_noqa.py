"""RPL005 suppressed: a deliberate sub-millisecond block, silenced."""

import time


async def settle():
    # Sub-scheduler-tick pause during shutdown; audited.
    time.sleep(0.0005)  # repro: noqa[RPL005]
