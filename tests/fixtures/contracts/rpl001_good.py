"""RPL001 clean: stored nodes are protected or wrapped; locals are fine."""


class Checker:
    def __init__(self, manager, context, f, g):
        self.cached = manager.protect(manager.or_(f, g))
        self.fn = context.function(manager.and_(f, g))
        scratch = manager.not_(f)  # local, consumed below — allowed
        self.size = manager.size(scratch)
