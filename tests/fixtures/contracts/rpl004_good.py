"""RPL004 clean: every field a stage reads is listed in its entry."""

STAGE_DEPENDENCIES = {
    "properties": ("arch",),
    "faults": ("arch", "workload_length", "workload_seed", "max_faults"),
}


def _stage_properties(job, arch):
    return job.arch


def stage_faults(job):
    return (job.arch, job.workload_length, job.workload_seed, job.max_faults)


def helper(job):
    # Not a stage function — free to read anything.
    return job.num_programs
