"""RPL001 suppressed: the violation is present but silenced in place."""


class Checker:
    def __init__(self, manager, f, g):
        # Lifetime is bounded by the enclosing postpone_reorder() in the
        # caller; deliberate and audited.
        self.cached = manager.or_(f, g)  # repro: noqa[RPL001]
