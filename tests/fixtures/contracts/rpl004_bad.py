"""RPL004 true positive: a stage reads a field its dependency entry omits."""

STAGE_DEPENDENCIES = {
    "properties": ("arch",),
    "faults": ("arch", "workload_length"),
}


def _stage_properties(job, arch):
    # Reads workload_seed but the entry lists only arch: one stage_key
    # across all seeds → stale cached results.
    return (job.arch, job.workload_seed)


def stage_faults(job):
    return (job.arch, job.workload_length, job.max_faults)
