"""RPL005 clean: async code awaits; blocking work hops to an executor."""

import asyncio
import time


async def poll(loop, executor, path):
    await asyncio.sleep(0.5)
    return await loop.run_in_executor(executor, path.read_text)


def sync_helper(path):
    # Blocking in a plain function is fine — this runs on an executor.
    time.sleep(0.1)
    with open(path) as handle:
        return handle.read()


async def wrapper(loop, executor, path):
    return await loop.run_in_executor(executor, sync_helper, path)
