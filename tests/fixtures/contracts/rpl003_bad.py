"""RPL003 true positives: raw-id loops over manager internals, unguarded."""


def walk_store(manager):
    sizes = []
    for slot in range(len(manager._var)):
        sizes.append(manager._lo[slot])
    return sizes


def replay(manager, entries):
    out = {}
    for var, lo, hi in entries:
        out[var] = manager._make_node(var, lo, hi)
    return out


def via_alias(manager, roots):
    var_arr = manager._var
    total = 0
    for root in roots:
        total += var_arr[root]
    return total
