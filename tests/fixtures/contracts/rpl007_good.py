"""RPL007 clean: stages lean on the obs span API; helpers may self-time."""

import time

from repro.obs import annotate, span


def _stage_faults(job, context):
    # Sub-step timing goes through a nested span, which lands in the
    # trace and the repro_stage_seconds histogram automatically.
    with span("faults.inject", budget=job.max_faults):
        outcome = run_fault_campaign(job, context)
    annotate(injected=outcome)
    return outcome


def stage_analysis(job, context):
    with span("analysis.classify"):
        return analyze(job, context)


def helper_outside_stage(job):
    # Not a stage function — free to use the clock directly (the stage
    # loop and the service keep their own perf_counter pairs too).
    start = time.perf_counter()
    result = job
    return result, time.perf_counter() - start


def run_fault_campaign(job, context):
    return context


def analyze(job, context):
    return context
