"""RPL006 suppressed: a pre-publication write on a not-yet-shared record."""


class VerificationService:
    def _execute(self, record, spec):
        # record is still runner-local here — not yet in self._jobs — so
        # no loop-thread reader can observe the torn write.
        record.state = "running"  # repro: noqa[RPL006]
        return spec.run()
