"""RPL002 true positive: a node minted by one manager fed into another."""


def mix(manager_a, manager_b, f):
    return manager_a.and_(f, manager_b.var("x"))


def mix_keyword(manager_a, manager_b, f, g):
    return manager_a.compose(f, replacement=manager_b.not_(g))
