"""RPL002 clean: every operand comes from the same manager expression."""


def combine(manager, f):
    return manager.and_(f, manager.var("x"))


def combine_attr(self, f):
    return self.manager.or_(f, self.manager.not_(f))
