"""RPL002 suppressed: a deliberate cross-manager read, silenced in place."""


def transfer(manager_a, manager_b, f):
    # manager_b.var() here returns a level index by construction, not a
    # node id; audited and suppressed.
    return manager_a.and_(f, manager_b.var("x"))  # repro: noqa[RPL002]
