"""RPL006 true positives: runner-thread code touching loop-only state."""


class VerificationService:
    def _execute(self, record, spec):
        record.state = "running"  # JobRecord fields are loop-thread-only
        self._jobs[spec.key] = record
        self._transition(record, "running")
        result = spec.run()
        self._finalize(record, result)
        return result
