"""RPL003 clean: the same loops, guarded by postpone_reorder()."""


def walk_store(manager):
    sizes = []
    with manager.postpone_reorder():
        for slot in range(len(manager._var)):
            sizes.append(manager._lo[slot])
    return sizes


def replay(manager, entries):
    out = {}
    with manager.postpone_reorder():
        for var, lo, hi in entries:
            out[var] = manager._make_node(var, lo, hi)
    return out


def single_read(manager, root):
    # Not in a loop — a one-shot read with no raw ids held across ops.
    return manager._var[root]
