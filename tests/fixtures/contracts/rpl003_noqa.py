"""RPL003 suppressed: a read-only diagnostic sweep, silenced in place."""


def count_live(manager):
    live = 0
    for slot in range(len(manager._var)):  # repro: noqa[RPL003]
        if manager._var[slot] >= 0:  # repro: noqa[RPL003]
            live += 1
    return live
