"""RPL007 suppressed: a deliberate raw timing, silenced in place."""

import time


def _stage_faults(job, context):
    # This stage feeds a latency budget check that must work even with
    # tracing compiled out, so the raw pair is deliberate.
    start = time.perf_counter()  # repro: noqa[RPL007]
    outcome = run_fault_campaign(job, context)
    outcome.seconds = time.perf_counter() - start  # repro: noqa[RPL007]
    return outcome


def run_fault_campaign(job, context):
    return context
