"""Tests for the Quine–McCluskey two-level minimiser (repro.expr.minimize)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import (
    FALSE,
    TRUE,
    Var,
    all_assignments,
    eval_expr,
    literal_count,
    minimize_expr,
    minimize_with_care_set,
    parse_expr,
    term_count,
)
from repro.expr.minimize import Implicant, minimum_cover, prime_implicants


class TestImplicant:
    def test_from_minterm_binds_every_variable(self):
        implicant = Implicant.from_minterm(0b101, 3)
        assert implicant.values == (True, False, True)
        assert implicant.num_literals() == 3

    def test_covers_its_own_minterm(self):
        implicant = Implicant.from_minterm(0b011, 3)
        assert implicant.covers(0b011)
        assert not implicant.covers(0b010)

    def test_combine_differing_in_one_position(self):
        a = Implicant.from_minterm(0b00, 2)
        b = Implicant.from_minterm(0b01, 2)
        merged = a.combine(b)
        assert merged is not None
        assert merged.values == (False, None)
        assert merged.covers(0b00) and merged.covers(0b01)

    def test_combine_rejects_two_bit_difference(self):
        a = Implicant.from_minterm(0b00, 2)
        b = Implicant.from_minterm(0b11, 2)
        assert a.combine(b) is None

    def test_combine_rejects_mismatched_dont_cares(self):
        a = Implicant(values=(None, True))
        b = Implicant(values=(False, False))
        assert a.combine(b) is None

    def test_to_expr_of_empty_product_is_true(self):
        assert Implicant(values=(None, None)).to_expr(["a", "b"]) == TRUE

    def test_to_expr_literals(self):
        expr = Implicant(values=(True, False)).to_expr(["a", "b"])
        assert eval_expr(expr, {"a": True, "b": False})
        assert not eval_expr(expr, {"a": True, "b": True})


class TestPrimeImplicants:
    def test_full_on_set_gives_single_prime(self):
        primes = prime_implicants({0, 1, 2, 3}, 2)
        assert len(primes) == 1
        assert primes[0].values == (None, None)

    def test_xor_has_no_merging(self):
        primes = prime_implicants({0b01, 0b10}, 2)
        assert len(primes) == 2
        assert all(p.num_literals() == 2 for p in primes)

    def test_empty_on_set(self):
        assert prime_implicants(set(), 3) == []

    def test_cover_selects_essential_primes(self):
        # f = a'b + ab' + ab  ->  minimal cover is a + b (two primes).
        minterms = {0b01, 0b10, 0b11}
        primes = prime_implicants(minterms, 2)
        cover = minimum_cover(primes, minterms)
        assert len(cover) == 2
        assert all(p.num_literals() == 1 for p in cover)


class TestMinimizeExpr:
    def test_classic_consensus(self):
        minimized = minimize_expr(parse_expr("a & b | a & !b | !a & b"))
        assert literal_count(minimized) == 2
        assert term_count(minimized) == 2

    def test_constant_false(self):
        assert minimize_expr(parse_expr("a & !a")) == FALSE

    def test_constant_true(self):
        assert minimize_expr(parse_expr("a | !a")) == TRUE

    def test_closed_formula_without_variables(self):
        assert minimize_expr(TRUE) == TRUE
        assert minimize_expr(FALSE) == FALSE

    def test_single_variable_is_preserved(self):
        assert minimize_expr(Var("x")) == Var("x")

    def test_variable_limit_enforced(self):
        wide = parse_expr(" | ".join(f"v{i}" for i in range(20)))
        with pytest.raises(ValueError):
            minimize_with_care_set(wide, max_vars=10)

    def test_result_is_equivalent(self):
        expr = parse_expr("(a -> b) & (b -> c) & (a | c)")
        minimized = minimize_expr(expr)
        for assignment in all_assignments(sorted(expr.variables())):
            assert eval_expr(expr, assignment) == eval_expr(minimized, assignment)

    def test_minimization_never_increases_literals(self):
        expr = parse_expr("a & b & c | a & b & !c | a & !b & c | a & !b & !c")
        minimized = minimize_expr(expr)
        assert literal_count(minimized) <= literal_count(expr)
        assert literal_count(minimized) == 1  # collapses to just `a`

    def test_dont_cares_enable_further_reduction(self):
        # With b constrained to be true by the care set, a & b reduces to a.
        expr = parse_expr("a & b")
        care = parse_expr("b")
        result = minimize_with_care_set(expr, care=care)
        assert result.expression == Var("a")
        assert result.dont_care_count > 0

    def test_care_set_everything_dont_care(self):
        # An unsatisfiable care set leaves an empty on-set: anything goes,
        # and the minimiser picks the cheapest cover (constant false).
        result = minimize_with_care_set(parse_expr("a & b"), care=FALSE)
        assert result.expression in (FALSE, TRUE)
        assert result.minterm_count == 0

    def test_result_metadata(self):
        result = minimize_with_care_set(parse_expr("a | b"))
        assert result.variables == ["a", "b"]
        assert result.minterm_count == 3
        assert result.literal_count() == 2


class TestCostMetrics:
    def test_literal_count_counts_occurrences(self):
        assert literal_count(parse_expr("a & b | a & c")) == 4

    def test_term_count_on_non_or(self):
        assert term_count(parse_expr("a & b")) == 1
        assert term_count(parse_expr("a | b | c")) == 3


@st.composite
def small_exprs(draw):
    """Random expressions over three variables."""
    names = ["p", "q", "r"]
    depth = draw(st.integers(min_value=0, max_value=3))

    def build(level):
        if level == 0:
            return Var(draw(st.sampled_from(names)))
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            return ~build(level - 1)
        if choice == 1:
            return build(level - 1) & build(level - 1)
        if choice == 2:
            return build(level - 1) | build(level - 1)
        return Var(draw(st.sampled_from(names)))

    return build(depth)


class TestMinimizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_exprs())
    def test_minimized_expression_is_equivalent(self, expr):
        minimized = minimize_expr(expr)
        names = sorted(expr.variables() | minimized.variables())
        for assignment in all_assignments(names or ["p"]):
            assert eval_expr(expr, assignment) == eval_expr(minimized, assignment)

    @settings(max_examples=60, deadline=None)
    @given(small_exprs())
    def test_minimization_is_idempotent(self, expr):
        once = minimize_expr(expr)
        twice = minimize_expr(once)
        names = sorted(once.variables() | twice.variables())
        for assignment in all_assignments(names or ["p"]):
            assert eval_expr(once, assignment) == eval_expr(twice, assignment)
        assert literal_count(twice) <= literal_count(once)
