"""End-to-end and unit tests for the verification service (repro.service).

The end-to-end tests run a real daemon on an ephemeral localhost port via
``start_service`` and talk to it over actual sockets with the stdlib
client — the same path ``repro submit`` takes.  Everything uses the tiny
``fam-`` family architectures so a full six-stage job stays around 0.1 s.
"""

import asyncio
import http.client
import io
import json
import threading
import time

import pytest

from repro.campaign import CampaignSpec, JobSpec, ResultStore
from repro.cli import main as cli_main
from repro.service import (
    JobState,
    ServiceClosing,
    ServiceError,
    SubmissionError,
    VerificationService,
    parse_submission,
    start_service,
)

#: Small enough that a full six-stage job takes ~0.1 s.
TINY = dict(workload_length=24, max_faults=2)
#: A properties+derive-only job on this architecture runs in ~10 ms.
LIGHT = dict(stages="properties,derive", **TINY)

ARCH = "fam-r2w1d3s1-bypass"
ARCH2 = "fam-r2w1d3s1-blocking"
ARCH3 = "fam-r2w1d4s1-bypass"


@pytest.fixture
def service(tmp_path):
    handle = start_service(store_root=str(tmp_path / "store"), workers=1)
    try:
        yield handle
    finally:
        handle.stop()


def submit_light(client, arch=ARCH, **extra):
    return client.submit(arch=arch, **{**LIGHT, **extra})


# -- submission parsing (no daemon needed) -----------------------------------------------


class TestParseSubmission:
    def test_arch_shorthand(self):
        spec, priority = parse_submission(
            {"arch": ARCH, "stages": "properties, derive", "workload_length": 24}
        )
        assert priority == 0
        assert [job.arch for job in spec.jobs] == [ARCH]
        assert spec.jobs[0].stages == ("properties", "derive")
        assert spec.jobs[0].workload_length == 24

    def test_stages_as_list(self):
        spec, _ = parse_submission({"arch": ARCH, "stages": ["derive"]})
        assert spec.jobs[0].stages == ("derive",)

    def test_job_shape(self):
        job = JobSpec(arch=ARCH, **TINY)
        spec, priority = parse_submission({"job": job.to_dict(), "priority": 3})
        assert priority == 3
        assert spec.jobs == (job,)

    def test_campaign_shape(self):
        campaign = CampaignSpec(
            name="two", jobs=(JobSpec(arch=ARCH), JobSpec(arch=ARCH2))
        )
        spec, _ = parse_submission({"campaign": campaign.to_dict()})
        assert spec.name == "two"
        assert len(spec.jobs) == 2

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "JSON object"),
            ({}, "exactly one of"),
            ({"arch": ARCH, "job": {"arch": ARCH}}, "exactly one of"),
            ({"arch": ARCH, "bogus": 1}, "unknown submission fields"),
            ({"arch": ARCH, "priority": True}, "priority must be an integer"),
            ({"arch": ARCH, "priority": "high"}, "priority must be an integer"),
            ({"arch": ""}, "non-empty string"),
            ({"arch": ARCH, "workload_length": "24"}, "must be an integer"),
            ({"arch": ARCH, "stages": 7}, "stages must be"),
            ({"job": {"arch": ARCH}, "stages": "derive"}, "only apply to 'arch'"),
        ],
    )
    def test_rejects(self, payload, fragment):
        with pytest.raises(SubmissionError, match=fragment):
            parse_submission(payload)

    def test_campaign_key_identifies_content(self):
        a, _ = parse_submission({"arch": ARCH, **TINY})
        b, _ = parse_submission({"arch": ARCH, **TINY, "priority": 5})
        c, _ = parse_submission({"arch": ARCH2, **TINY})
        assert a.campaign_key() == b.campaign_key()  # priority is not content
        assert a.campaign_key() != c.campaign_key()


# -- end-to-end over a real socket -------------------------------------------------------


class TestEndToEnd:
    def test_submit_stream_result(self, service):
        client = service.client()
        submitted = submit_light(client)
        job = submitted["job"]
        assert job["id"].startswith("job-")
        assert submitted["coalesced"] is False

        events = []
        final = client.wait(job["id"], timeout=60, on_event=events.append)
        assert final["state"] == JobState.DONE
        assert final["ok"] is True
        assert final["report"]["passed"] == final["report"]["total"] == 1

        kinds = [event["kind"] for event in events]
        assert kinds[0] == "state" and kinds[-1] == "state"
        assert "result" in kinds
        assert [event["seq"] for event in events] == list(range(len(events)))
        result = next(event for event in events if event["kind"] == "result")
        assert result["arch"] == ARCH and result["ok"] is True
        done = events[-1]
        assert done["state"] == JobState.DONE and done["passed"] == 1

    def test_cached_resubmit_is_immediate(self, service):
        client = service.client()
        first = submit_light(client)
        client.wait(first["job"]["id"], timeout=60)

        start = time.monotonic()
        again = submit_light(client)
        elapsed = time.monotonic() - start
        job = again["job"]
        # Terminal in the submit response itself: no queueing happened.
        assert job["state"] == JobState.DONE
        assert job["from_cache"] is True and job["ok"] is True
        assert elapsed < 1.0  # measured ~3 ms; generous bound for CI noise

    def test_campaign_submission(self, service):
        client = service.client()
        campaign = CampaignSpec(
            name="pair",
            jobs=(JobSpec(arch=ARCH, **TINY), JobSpec(arch=ARCH2, **TINY)),
        )
        submitted = client.submit(campaign=campaign.to_dict())
        final = client.wait(submitted["job"]["id"], timeout=120)
        assert final["state"] == JobState.DONE and final["ok"] is True
        assert final["report"]["total"] == 2
        assert sorted(r["job"]["arch"] for r in final["report"]["jobs"]) == sorted(
            [ARCH, ARCH2]
        )

    def test_cancel_queued_job(self, service):
        client = service.client()
        blocker = client.submit(arch=ARCH, **TINY)  # full stages, occupies runner
        queued = submit_light(client, arch=ARCH2)
        response = client.cancel(queued["job"]["id"])
        assert response["cancelled"] is True
        record = client.job(queued["job"]["id"])
        assert record["state"] == JobState.CANCELLED
        # Cancelling a terminal job is a no-op, not an error.
        assert client.cancel(queued["job"]["id"])["cancelled"] is False
        final = client.wait(blocker["job"]["id"], timeout=120)
        assert final["state"] == JobState.DONE

    def test_cancel_mid_campaign(self, service):
        client = service.client()
        campaign = CampaignSpec(
            name="cancel-me",
            jobs=(
                JobSpec(arch=ARCH, **LIGHT_JOBS[0]),
                JobSpec(arch=ARCH2, **TINY),
                JobSpec(arch=ARCH3, **TINY),
                JobSpec(arch="fam-r2w1d4s1-blocking", **TINY),
            ),
        )
        submitted = client.submit(campaign=campaign.to_dict())
        job_id = submitted["job"]["id"]
        results = 0
        for event in client.stream(job_id):
            if event["kind"] == "result":
                results += 1
                client.cancel(job_id)  # first architecture done: stop the rest
        final = client.job(job_id)
        assert final["state"] == JobState.CANCELLED
        assert final["ok"] is None
        assert 1 <= results < 4
        assert "cancelled" in final["error"]

    def test_concurrent_clients_share_one_execution(self, service):
        finals, responses, errors = [], [], []
        barrier = threading.Barrier(2)

        def run():
            try:
                client = service.client()
                barrier.wait(timeout=10)
                submitted = client.submit(arch=ARCH, **TINY)
                responses.append(submitted)
                finals.append(client.wait(submitted["job"]["id"], timeout=120))
            except Exception as exc:  # surfaced via the errors list
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(finals) == 2
        for final in finals:
            assert final["state"] == JobState.DONE and final["ok"] is True
        # The two submissions either coalesced onto one job or the second
        # was answered from the cache — never two executions of the work.
        ids = {response["job"]["id"] for response in responses}
        if len(ids) == 2:
            assert any(r["job"]["from_cache"] for r in responses)
        else:
            assert any(r["coalesced"] for r in responses)

    def test_event_stream_cursor_resumes(self, service):
        client = service.client()
        job_id = submit_light(client)["job"]["id"]
        client.wait(job_id, timeout=60)
        full = list(client.stream(job_id))
        tail = list(client.stream(job_id, since=2))
        assert [e["seq"] for e in tail] == [e["seq"] for e in full[2:]]

    def test_priority_orders_the_queue(self, service):
        client = service.client()
        blocker = client.submit(
            campaign=CampaignSpec(
                name="blocker",
                jobs=(JobSpec(arch=ARCH, **TINY), JobSpec(arch=ARCH2, **TINY)),
            ).to_dict()
        )
        low = submit_light(client, arch=ARCH3, priority=0)
        high = submit_light(client, arch="fam-r2w1d4s1-blocking", priority=5)
        for response in (blocker, low, high):
            client.wait(response["job"]["id"], timeout=120)
        low_record = client.job(low["job"]["id"])
        high_record = client.job(high["job"]["id"])
        assert high_record["started_at"] < low_record["started_at"]


LIGHT_JOBS = [dict(stages=("properties", "derive"), **TINY)]


# -- plain endpoints and error paths -----------------------------------------------------


class TestEndpoints:
    def test_health(self, service):
        health = service.client().health()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert set(health["jobs"]) == set(JobState.ALL)

    def test_archs(self, service):
        archs = service.client().archs()
        assert archs and all(isinstance(name, str) for name in archs)
        assert "dac2002-example" in archs

    def test_store_telemetry(self, service):
        client = service.client()
        before = client.store()
        assert before["configured"] is True
        assert before["store"]["entries"]["jobs"] == 0

        job_id = submit_light(client)["job"]["id"]
        client.wait(job_id, timeout=60)
        submit_light(client)  # cache hit

        after = client.store()["store"]
        assert after["entries"]["jobs"] == 1
        assert after["stats"]["hits"] >= 1

    def test_store_disabled(self, tmp_path):
        with start_service(store_root=None, workers=1) as handle:
            response = handle.client().store()
            assert response == {"configured": False, "store": None}

    def test_jobs_listing_and_state_filter(self, service):
        client = service.client()
        job_id = submit_light(client)["job"]["id"]
        client.wait(job_id, timeout=60)
        done = client.jobs(state=JobState.DONE)
        assert [record["id"] for record in done] == [job_id]
        assert client.jobs(state=JobState.FAILED) == []
        assert done[0]["archs"] == [ARCH]

    def test_unknown_state_filter_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().jobs(state="bogus")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().job("job-999999")
        assert excinfo.value.status == 404 and excinfo.value.code == "not_found"

    def test_unknown_architecture_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().submit(arch="no-such-arch")
        assert excinfo.value.status == 400
        assert "unknown architecture" in excinfo.value.message

    def test_unknown_path_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client()._request("GET", "/v2/health")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client()._request("DELETE", "/v1/health")
        assert excinfo.value.status == 405

    def test_malformed_json_body_is_400(self, service):
        connection = http.client.HTTPConnection(service.host, service.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/jobs",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
        finally:
            connection.close()


# -- CLI verbs against a live daemon -----------------------------------------------------


class TestServiceCli:
    def test_submit_follows_to_done(self, service):
        out = io.StringIO()
        rc = cli_main(
            [
                "submit",
                "--port",
                str(service.port),
                "--arch",
                ARCH,
                "--stages",
                "properties,derive",
                "--length",
                "24",
                "--max-faults",
                "2",
            ],
            out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "state=queued" in text or "state=done" in text
        assert f"[{ARCH}] ok" in text
        assert "done" in text

    def test_submit_no_follow_then_jobs_table(self, service):
        out = io.StringIO()
        assert (
            cli_main(
                [
                    "submit",
                    "--port",
                    str(service.port),
                    "--arch",
                    ARCH,
                    "--stages",
                    "properties,derive",
                    "--no-follow",
                ],
                out,
            )
            == 0
        )
        job_id = out.getvalue().split()[0]
        service.client().wait(job_id, timeout=60)

        table = io.StringIO()
        assert cli_main(["jobs", "--port", str(service.port)], table) == 0
        assert job_id in table.getvalue()

        detail = io.StringIO()
        assert (
            cli_main(["jobs", "--port", str(service.port), "--id", job_id], detail)
            == 0
        )
        record = json.loads(detail.getvalue())
        assert record["id"] == job_id and record["state"] == JobState.DONE

        stats = io.StringIO()
        assert (
            cli_main(["jobs", "--port", str(service.port), "--store-stats"], stats)
            == 0
        )
        assert json.loads(stats.getvalue())["configured"] is True

    def test_submit_unreachable_daemon_fails_cleanly(self, capsys):
        out = io.StringIO()
        rc = cli_main(
            ["submit", "--port", "1", "--arch", ARCH, "--no-follow"], out
        )
        assert rc == 2  # CLI usage/infrastructure error, not a verdict
        assert "unreachable" in capsys.readouterr().err


# -- direct asyncio embedding and shutdown -----------------------------------------------


class TestLifecycle:
    def test_direct_asyncio_use(self, tmp_path):
        async def scenario():
            service = VerificationService(
                store=ResultStore(tmp_path / "store"), workers=1
            )
            await service.start()
            try:
                record, coalesced = await service.submit({"arch": ARCH, **LIGHT})
                assert coalesced is False
                kinds = []
                async for event in service.stream(record.id):
                    kinds.append(event.kind)
                assert record.terminal and record.ok is True
                assert kinds[-1] == "state"

                service._closing = True
                with pytest.raises(ServiceClosing):
                    await service.submit({"arch": ARCH, **LIGHT})
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_graceful_stop_drains_running_job(self, tmp_path):
        handle = start_service(store_root=str(tmp_path / "store"), workers=1)
        client = handle.client()
        job_id = client.submit(arch=ARCH, **TINY)["job"]["id"]
        deadline = time.monotonic() + 10
        while (
            client.job(job_id)["state"] == JobState.QUEUED
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        handle.stop(drain=True)
        # The daemon is gone, but the job it drained landed in the store.
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "unreachable"
        store = ResultStore(tmp_path / "store")
        assert store.get(JobSpec(arch=ARCH, **TINY)) is not None

    def test_stop_without_drain_cancels_queue(self, tmp_path):
        handle = start_service(store_root=str(tmp_path / "store"), workers=1)
        client = handle.client()
        client.submit(arch=ARCH, **TINY)
        queued = client.submit(arch=ARCH2, **TINY)["job"]["id"]
        handle.stop(drain=False)
        # Stop is idempotent.
        handle.stop()
        assert queued  # daemon exited despite a non-empty queue
