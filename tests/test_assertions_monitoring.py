"""Tests for assertion generation, runtime monitoring and SVA/PSL emission."""

import pytest

from repro.assertions import (
    AssertionKind,
    AssertionMonitor,
    VerificationSummary,
    assertions_by_kind,
    combined_assertions,
    format_table,
    functional_assertions,
    monitor_trace,
    performance_assertions,
    psl_vunit,
    sva_bind_directive,
    sva_module,
    testbench_assertions,
    violations_by_stage,
)
from repro.faults import FaultInjector
from repro.pipeline import Program, alu, reference_interlock, simulate
from repro.spec import CombinedSpec, PerformanceSpec
from repro.workloads import WorkloadGenerator, BALANCED, completion_contention_program


class TestAssertionGeneration:
    def test_one_functional_assertion_per_stage(self, example_spec):
        assertions = functional_assertions(example_spec)
        assert len(assertions) == len(example_spec.moe_flags())
        assert all(a.kind is AssertionKind.FUNCTIONAL for a in assertions)
        assert {a.moe for a in assertions} == set(example_spec.moe_flags())

    def test_one_performance_assertion_per_stage(self, example_spec):
        assertions = performance_assertions(PerformanceSpec(example_spec))
        assert len(assertions) == len(example_spec.moe_flags())
        assert all(a.kind is AssertionKind.PERFORMANCE for a in assertions)

    def test_combined_assertions(self, example_spec):
        assertions = combined_assertions(CombinedSpec(example_spec))
        assert all(a.kind is AssertionKind.COMBINED for a in assertions)

    def test_testbench_assertions_both_halves(self, example_spec):
        assertions = testbench_assertions(example_spec)
        grouped = assertions_by_kind(assertions)
        assert len(grouped[AssertionKind.FUNCTIONAL]) == len(example_spec.moe_flags())
        assert len(grouped[AssertionKind.PERFORMANCE]) == len(example_spec.moe_flags())
        only_perf = testbench_assertions(example_spec, include_functional=False)
        assert all(a.kind is AssertionKind.PERFORMANCE for a in only_perf)

    def test_assertion_names_unique(self, example_spec):
        names = [a.name for a in testbench_assertions(example_spec)]
        assert len(names) == len(set(names))

    def test_assertion_holds_evaluates_formula(self, example_spec):
        assertion = functional_assertions(example_spec)[0]  # long completion
        signals = {"long.req": True, "long.gnt": False, "long.4.moe": False}
        assert assertion.holds(signals)
        signals["long.4.moe"] = True
        assert not assertion.holds(signals)

    def test_describe_mentions_kind(self, example_spec):
        assert "[functional]" in functional_assertions(example_spec)[0].describe()


class TestAssertionMonitor:
    def test_monitor_requires_assertions(self):
        with pytest.raises(ValueError):
            AssertionMonitor([])

    def test_clean_trace_reports_clean(self, example_arch, example_spec):
        program = WorkloadGenerator(example_arch, seed=0).generate(BALANCED)
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        report = monitor_trace(trace, testbench_assertions(example_spec))
        assert report.clean()
        assert report.cycles_checked == trace.num_cycles()
        assert report.violation_count() == 0
        assert report.first_violation() is None
        assert "violations:          0" in report.describe()

    def test_performance_fault_fires_performance_assertions_only(
        self, example_arch, example_spec
    ):
        fault = FaultInjector(example_spec).extra_stall_fault("long.4.moe")
        program = completion_contention_program(example_arch, length=20)
        trace = simulate(example_arch, fault.interlock, program)
        report = monitor_trace(trace, testbench_assertions(example_spec))
        assert report.violation_count(AssertionKind.PERFORMANCE) > 0
        assert report.violation_count(AssertionKind.FUNCTIONAL) == 0
        assert "perf_long_4_moe" in report.violated_assertions(AssertionKind.PERFORMANCE)
        first = report.first_violation(AssertionKind.PERFORMANCE)
        assert first is not None and first.assertion.moe == "long.4.moe"

    def test_functional_fault_fires_functional_assertions(self, example_arch, example_spec):
        fault = FaultInjector(example_spec).never_stall_fault("long.4.moe")
        program = completion_contention_program(example_arch, length=20)
        trace = simulate(example_arch, fault.interlock, program)
        report = monitor_trace(trace, testbench_assertions(example_spec))
        assert report.violation_count(AssertionKind.FUNCTIONAL) > 0
        summary = VerificationSummary(trace=trace, monitor=report)
        assert summary.verdict() == "functional-bug"
        assert summary.hazards > 0

    def test_summary_verdicts(self, example_arch, example_spec):
        program = WorkloadGenerator(example_arch, seed=1).generate(BALANCED)
        clean_trace = simulate(example_arch, reference_interlock(example_spec), program)
        clean = VerificationSummary(
            trace=clean_trace, monitor=monitor_trace(clean_trace, testbench_assertions(example_spec))
        )
        assert clean.verdict() == "clean"
        fault = FaultInjector(example_spec).extra_stall_fault("short.2.moe")
        perf_trace = simulate(example_arch, fault.interlock, program)
        perf = VerificationSummary(
            trace=perf_trace, monitor=monitor_trace(perf_trace, testbench_assertions(example_spec))
        )
        assert perf.verdict() == "performance-bug"
        assert "verdict" in perf.describe()

    def test_monitor_rejects_traces_missing_signals(self, example_spec):
        from repro.pipeline.trace import CycleRecord, SimulationTrace

        record = CycleRecord(cycle=0, inputs={}, moe={}, occupancy={})
        trace = SimulationTrace(architecture_name="x", interlock_name="y", cycles=[record])
        with pytest.raises(KeyError):
            monitor_trace(trace, testbench_assertions(example_spec))

    def test_violations_by_stage_grouping(self, example_arch, example_spec):
        fault = FaultInjector(example_spec).extra_stall_fault("long.4.moe")
        program = completion_contention_program(example_arch, length=20)
        trace = simulate(example_arch, fault.interlock, program)
        report = monitor_trace(trace, testbench_assertions(example_spec))
        by_stage = violations_by_stage(report)
        assert by_stage, "expected at least one violating stage"
        assert max(by_stage, key=by_stage.get).startswith("long")


class TestHdlEmission:
    def test_sva_module_structure(self, example_spec):
        assertions = testbench_assertions(example_spec)
        text = sva_module(assertions, module_name="checker")
        assert text.count("assert property") == len(assertions)
        assert "module checker (" in text and text.rstrip().endswith("endmodule")
        assert "input logic clk" in text and "rst_n" in text
        # Sanitised signal names appear as ports.
        assert "input logic long_4_moe" in text
        assert "scb_0_" in text

    def test_sva_module_without_reset(self, example_spec):
        text = sva_module(functional_assertions(example_spec), reset=None)
        assert "disable iff" not in text

    def test_sva_requires_assertions(self):
        with pytest.raises(ValueError):
            sva_module([])

    def test_bind_directive(self, example_spec):
        assertions = functional_assertions(example_spec)
        directive = sva_bind_directive(
            "pipeline_top", assertions=assertions, signal_prefix="u_ctl."
        )
        assert directive.startswith("bind pipeline_top pipeline_spec_checker")
        assert ".long_4_moe(u_ctl.long_4_moe)" in directive

    def test_psl_vunit_structure(self, example_spec):
        assertions = testbench_assertions(example_spec)
        text = psl_vunit(assertions, unit_name="spec", bound_entity="ctl")
        assert text.startswith("-- Generated")
        assert "vunit spec (ctl)" in text
        assert text.count("assert p_") == len(assertions)
        with pytest.raises(ValueError):
            psl_vunit([])


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 200, "b": "z"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "200" in lines[3]

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]
