"""Tests for the SymbolicFunction layer (repro.symbolic) and its BDD kernel ops.

The acceptance-critical property lives here: ISOP-materialized expressions
are cross-checked against their BDD nodes with hypothesis — compiling the
materialized minimized cover back into the context must reproduce exactly
the node it came from, and both must agree pointwise with the original
expression on every assignment.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import register_interleaved_order
from repro.bdd.manager import BddManager, CoverBudgetExceeded
from repro.expr import (
    And,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    all_assignments,
    eval_expr,
)
from repro.spec import symbolic_most_liberal
from repro.symbolic import SymbolicContext, SymbolicFunction

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]


def expressions(max_leaves: int = 12):
    """Hypothesis strategy producing random expressions over a small alphabet."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
        ),
        max_leaves=max_leaves,
    )


class TestIsopMaterialization:
    @settings(max_examples=120, deadline=None)
    @given(expressions())
    def test_materialized_cover_equivalent_to_node(self, expr):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(expr)
        materialized = function.to_expr()
        # Pointwise agreement with the original expression ...
        for assignment in all_assignments(VARIABLE_NAMES):
            assert eval_expr(expr, assignment) == eval_expr(materialized, assignment)
        # ... and compiling the cover back must land on the very same node.
        assert context.lift(materialized).node == function.node

    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_minimized_cover_polarity_is_consistent(self, expr):
        context = SymbolicContext(VARIABLE_NAMES)
        function = context.lift(expr)
        complemented, cubes = function.minimized_cover()
        rebuilt = context.false()
        for cube in cubes:
            product = context.true()
            for name, polarity in cube.items():
                literal = context.var(name)
                product = product & (literal if polarity else ~literal)
            rebuilt = rebuilt | product
        if complemented:
            rebuilt = ~rebuilt
        assert rebuilt.node == function.node

    def test_materialization_is_cached(self):
        context = SymbolicContext(["a", "b"])
        function = context.lift(Or(Var("a"), Var("b")))
        assert function.to_expr() is function.to_expr()

    def test_constants_materialize_to_constants(self):
        context = SymbolicContext(["a"])
        assert context.true().to_expr() is TRUE
        assert context.false().to_expr() is FALSE

    def test_mostly_true_function_materializes_via_complement(self):
        # ¬(a ∧ b ∧ c ∧ d): 15 of 16 minterms on — the direct SOP needs four
        # cubes, the complement one; the budget race must pick the negation.
        context = SymbolicContext(VARIABLE_NAMES)
        product = And(And(Var("a"), Var("b")), And(Var("c"), Var("d")))
        function = context.lift(Not(product))
        complemented, cubes = function.minimized_cover()
        assert complemented is True
        assert len(cubes) == 1
        assert cubes[0] == {"a": True, "b": True, "c": True, "d": True}

    def test_cover_budget_raises(self):
        manager = BddManager([f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)])
        # The interleaving achilles heel: OR of x_i ∧ y_i cubes.
        node = manager.false()
        for i in range(4):
            node = manager.or_(
                node, manager.and_(manager.var(f"x{i}"), manager.var(f"y{i}"))
            )
        with pytest.raises(CoverBudgetExceeded):
            manager.isop(node, node, max_cubes=2)
        # Without a budget the full cover comes back fine.
        _, cubes = manager.isop(node, node)
        assert len(cubes) == 4


class TestGeneralizedCofactors:
    @settings(max_examples=80, deadline=None)
    @given(expressions(), expressions())
    def test_cofactors_agree_on_care_set(self, f_expr, c_expr):
        context = SymbolicContext(VARIABLE_NAMES)
        f = context.lift(f_expr)
        care = context.lift(c_expr)
        if care.is_false():
            return
        for operator in (SymbolicFunction.constrain, SymbolicFunction.restrict_with):
            g = operator(f, care)
            assert (g & care).node == (f & care).node

    @settings(max_examples=80, deadline=None)
    @given(expressions(), expressions())
    def test_restrict_never_grows_support(self, f_expr, c_expr):
        context = SymbolicContext(VARIABLE_NAMES)
        f = context.lift(f_expr)
        care = context.lift(c_expr)
        if care.is_false():
            return
        assert f.restrict_with(care).support() <= f.support()

    def test_empty_care_set_rejected(self):
        context = SymbolicContext(["a"])
        with pytest.raises(ValueError):
            context.var("a").constrain(context.false())
        with pytest.raises(ValueError):
            context.var("a").restrict_with(context.false())


class TestSymbolicFunctionAlgebra:
    def test_operations_and_decisions(self):
        context = SymbolicContext(["a", "b", "c"])
        a, b, c = context.var("a"), context.var("b"), context.var("c")
        assert (a & ~a).is_false()
        assert (a | ~a).is_true()
        assert (a ^ b).equivalent((a & ~b) | (~a & b))
        assert a.implies(a | b).is_true()
        assert a.iff(a).is_true()
        assert a.ite(b, c).equivalent((a & b) | (~a & c))
        assert (a & b).evaluate({"a": True, "b": True}) is True
        assert (a & b).support() == frozenset({"a", "b"})
        assert (a & b).sat_count(over=["a", "b", "c"]) == 2

    def test_compose_substitutes_simultaneously(self):
        context = SymbolicContext(["a", "b"])
        a, b = context.var("a"), context.var("b")
        swapped = (a & ~b).compose({"a": b, "b": a})
        assert swapped.equivalent(b & ~a)

    def test_cross_context_mixing_is_rejected(self):
        context_a = SymbolicContext(["a"])
        context_b = SymbolicContext(["a"])
        with pytest.raises(ValueError):
            context_a.var("a") & context_b.var("a")
        with pytest.raises(ValueError):
            context_a.lift(context_b.var("a"))

    def test_find_difference_names_a_witness(self):
        context = SymbolicContext(["a", "b"])
        a, b = context.var("a"), context.var("b")
        witness = (a & b).find_difference(a)
        assert witness is not None
        assert eval_expr(And(Var("a"), Var("b")), witness) != witness["a"]

    def test_scope_merges_through_operations(self):
        context = SymbolicContext(["a", "b"])
        f = context.function(context.var("a").node, scope=["a"])
        g = context.function(context.var("b").node, scope=["b"])
        assert (f & g).scope == ("a", "b")
        assert f.sat_count() == 1  # over its scope, not the whole manager


class TestDerivationBackends:
    def test_bdd_and_expr_backends_agree(self, example_spec):
        bdd_result = symbolic_most_liberal(example_spec, backend="bdd")
        expr_result = symbolic_most_liberal(example_spec, backend="expr")
        context = SymbolicContext()
        for moe in example_spec.moe_flags():
            lhs = context.lift(bdd_result.moe_expressions[moe])
            rhs = context.lift(expr_result.moe_expressions[moe])
            assert lhs.node == rhs.node, f"backends disagree on {moe}"

    def test_bdd_backend_carries_functions_expr_backend_does_not(self, example_spec):
        assert symbolic_most_liberal(example_spec).moe_functions is not None
        legacy = symbolic_most_liberal(example_spec, backend="expr")
        assert legacy.moe_functions is None
        with pytest.raises(KeyError):
            legacy.moe_function(example_spec.moe_flags()[0])

    def test_unknown_backend_rejected(self, example_spec):
        with pytest.raises(ValueError):
            symbolic_most_liberal(example_spec, backend="sat")

    def test_stall_expressions_are_memoized(self, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        first = derivation.stall_expressions()
        second = derivation.stall_expressions()
        assert first == second
        for moe in first:
            # The per-flag objects are the cached instances, not re-simplified.
            assert first[moe] is second[moe]

    def test_stall_functions_are_negations(self, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        for moe, stall in derivation.stall_functions().items():
            assert (~stall).node == derivation.moe_function(moe).node

    def test_derivation_scope_is_primary_inputs(self, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        for function in derivation.moe_functions.values():
            assert function.scope == tuple(example_spec.input_signals())
            assert function.support() <= set(example_spec.input_signals())


class TestSymbolicObligationsAcrossLayers:
    def test_property_checker_accepts_symbolic_obligations(self, example_spec, example_arch):
        from repro.checking import PropertyChecker

        derivation = symbolic_most_liberal(example_spec)
        context = derivation.context
        checker = PropertyChecker(example_spec, architecture=example_arch, backend="bdd")
        # The derivation's own per-stage contract, handed over as nodes:
        # condition∘MOE ↔ ¬MOE_i must be valid for every stage.
        moe_nodes = {m: f.node for m, f in derivation.moe_functions.items()}
        obligations = {}
        for clause in example_spec.clauses:
            condition = context.function(
                context.manager.compose_many(context.lift(clause.condition).node, moe_nodes)
            )
            obligations[clause.moe] = condition.iff(~derivation.moe_function(clause.moe))
        report = checker.check_obligations(obligations, name="derived-contract")
        assert report.all_hold()
        assert len(report.results) == len(example_spec.clauses)

    def test_property_checker_reports_failing_obligation_with_witness(
        self, example_spec, example_arch
    ):
        from repro.checking import PropertyChecker

        derivation = symbolic_most_liberal(example_spec)
        checker = PropertyChecker(example_spec, architecture=example_arch, backend="bdd")
        moe = example_spec.moe_flags()[0]
        # MOE_i is not constant-true, so this obligation must fail.
        report = checker.check_obligations({moe: derivation.moe_function(moe)})
        assert not report.all_hold()
        assert report.results[0].counterexample is not None

    def test_bmc_model_from_derivation(self, example_spec):
        from repro.checking import BoundedModelChecker, CombinationalModel

        derivation = symbolic_most_liberal(example_spec)
        model = CombinationalModel.from_derivation(derivation)
        assert set(model.moe_flags()) == set(example_spec.moe_flags())
        checker = BoundedModelChecker(example_spec, stop_at_first=False)
        result = checker.check_performance(model, bound=2)
        assert result.holds

    def test_derived_assertions_from_covers(self, example_spec, example_arch):
        from repro.assertions import derived_assertions, monitor_trace
        from repro.pipeline import reference_interlock, simulate
        from repro.workloads import WorkloadGenerator, WorkloadProfile

        derivation = symbolic_most_liberal(example_spec)
        assertions = derived_assertions(derivation)
        assert len(assertions) == 2 * len(example_spec.moe_flags())
        # Closed-form assertions range over primary inputs plus the stage's
        # own moe flag only — never other stages' flags.
        inputs = set(example_spec.input_signals())
        for assertion in assertions:
            assert assertion.formula.variables() <= inputs | {assertion.moe}
        # The reference interlock satisfies its own closed-form contract.
        program = WorkloadGenerator(example_arch, seed=5).generate(WorkloadProfile(length=40))
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        assert monitor_trace(trace, assertions).clean()

    def test_synthesis_lowers_isop_covers(self, example_spec):
        from repro.synth import synthesize_interlock

        derivation = symbolic_most_liberal(example_spec)
        synthesis = synthesize_interlock(example_spec, derivation=derivation)
        # The netlist interlock agrees with the closed forms on sampled inputs.
        import random

        rng = random.Random(9)
        interlock = synthesis.interlock()
        for _ in range(25):
            valuation = {
                name: bool(rng.getrandbits(1)) for name in example_spec.input_signals()
            }
            assert interlock.compute_moe(valuation) == derivation.evaluate(valuation)


class TestRegisterInterleavedOrder:
    def test_groups_by_register_index(self):
        names = [
            "interrupt",
            "p.1.src.regaddr=0",
            "p.1.src.regaddr=1",
            "scb[0]",
            "scb[1]",
            "c.regaddr=0",
            "c.regaddr=1",
        ]
        order = register_interleaved_order(names)
        assert order[0] == "interrupt"
        index_0 = {order.index(n) for n in ("p.1.src.regaddr=0", "scb[0]", "c.regaddr=0")}
        index_1 = {order.index(n) for n in ("p.1.src.regaddr=1", "scb[1]", "c.regaddr=1")}
        assert max(index_0) < min(index_1)

    def test_full_firepath_derivation_completes(self):
        # The acceptance scenario: 16 registers, two-sided LIW — previously
        # intractable.  Keep an eye on wall clock: this must stay trivial.
        from repro.archs import firepath_like_architecture
        from repro.spec import build_functional_spec

        spec = build_functional_spec(firepath_like_architecture(num_registers=16))
        derivation = symbolic_most_liberal(spec)
        assert len(derivation.moe_functions) == len(spec.moe_flags())
        assert max(derivation.bdd_sizes.values()) < 10_000
        # Materialization must also stay tractable (budget-raced covers).
        assert all(expr.size() < 10_000 for expr in derivation.moe_expressions.values())
