"""Tests for FunctionalSpec / PerformanceSpec / CombinedSpec data structures."""

import pytest

from repro.expr import And, FALSE, Iff, Implies, Not, Or, Var, eval_expr, to_text
from repro.spec import (
    CombinedSpec,
    FunctionalSpec,
    PerformanceSpec,
    SpecificationError,
    StallClause,
    combined_spec_of,
    performance_spec_of,
)


def two_stage_spec():
    """A minimal two-stage single-pipe specification used throughout."""
    moe2, moe1 = "p.2.moe", "p.1.moe"
    clause2 = StallClause(moe=moe2, condition=Var("p.req") & ~Var("p.gnt"), label="completion")
    clause1 = StallClause(moe=moe1, condition=Var("p.1.rtm") & ~Var(moe2), label="issue")
    return FunctionalSpec(
        name="two-stage",
        clauses=[clause2, clause1],
        inputs=["p.req", "p.gnt", "p.1.rtm"],
    )


class TestStallClause:
    def test_functional_formula_shape(self):
        clause = StallClause(moe="m", condition=Var("c"))
        assert clause.functional_formula() == Implies(Var("c"), Not(Var("m")))

    def test_performance_formula_shape(self):
        clause = StallClause(moe="m", condition=Var("c"))
        assert clause.performance_formula() == Implies(Not(Var("m")), Var("c"))

    def test_combined_formula_shape(self):
        clause = StallClause(moe="m", condition=Var("c"))
        assert clause.combined_formula() == Iff(Var("c"), Not(Var("m")))

    def test_moe_variables_in_condition(self):
        clause = StallClause(moe="a.1.moe", condition=Var("rtm") & ~Var("a.2.moe"))
        assert clause.moe_variables_in_condition(["a.1.moe", "a.2.moe"]) == ["a.2.moe"]

    def test_describe_mentions_label_and_moe(self):
        clause = StallClause(moe="m", condition=Var("c"), label="issue")
        text = clause.describe()
        assert "issue" in text and "m" in text and "c" in text


class TestFunctionalSpecValidation:
    def test_duplicate_moe_rejected(self):
        clause = StallClause(moe="m", condition=Var("c"))
        with pytest.raises(SpecificationError):
            FunctionalSpec(name="bad", clauses=[clause, clause], inputs=["c"])

    def test_undeclared_signal_rejected(self):
        clause = StallClause(moe="m", condition=Var("mystery"))
        with pytest.raises(SpecificationError):
            FunctionalSpec(name="bad", clauses=[clause], inputs=[])

    def test_signal_cannot_be_both_input_and_moe(self):
        clause = StallClause(moe="m", condition=Var("c"))
        with pytest.raises(SpecificationError):
            FunctionalSpec(name="bad", clauses=[clause], inputs=["c", "m"])

    def test_conditions_may_reference_other_moes(self):
        spec = two_stage_spec()
        assert spec.moe_flags() == ["p.2.moe", "p.1.moe"]


class TestFunctionalSpecQueries:
    def test_clause_and_condition_lookup(self):
        spec = two_stage_spec()
        assert spec.clause_for("p.1.moe").label == "issue"
        assert spec.condition_for("p.2.moe") == Var("p.req") & ~Var("p.gnt")
        with pytest.raises(KeyError):
            spec.clause_for("unknown")

    def test_all_signals(self):
        spec = two_stage_spec()
        assert spec.all_signals() == ["p.req", "p.gnt", "p.1.rtm", "p.2.moe", "p.1.moe"]

    def test_formulas_are_conjunctions_over_clauses(self):
        spec = two_stage_spec()
        functional = spec.functional_formula()
        env = {
            "p.req": True,
            "p.gnt": False,
            "p.1.rtm": True,
            "p.2.moe": False,
            "p.1.moe": False,
        }
        assert eval_expr(functional, env)
        env["p.2.moe"] = True  # completion moves although not granted: violation
        assert not eval_expr(functional, env)

    def test_performance_formula_detects_unnecessary_stall(self):
        spec = two_stage_spec()
        performance = spec.performance_formula()
        env = {
            "p.req": False,
            "p.gnt": False,
            "p.1.rtm": False,
            "p.2.moe": False,  # stalled with no reason
            "p.1.moe": True,
        }
        assert not eval_expr(performance, env)
        env["p.2.moe"] = True
        assert eval_expr(performance, env)

    def test_moe_dependencies_and_feed_forward(self):
        spec = two_stage_spec()
        deps = spec.moe_dependencies()
        assert deps["p.1.moe"] == ["p.2.moe"]
        assert deps["p.2.moe"] == []
        assert spec.is_feed_forward()

    def test_lockstep_cycle_not_feed_forward(self, example_spec):
        assert not example_spec.is_feed_forward()

    def test_monotonicity_check(self):
        spec = two_stage_spec()
        assert spec.is_monotone()
        assert spec.violating_clauses() == []

    def test_non_monotone_spec_detected(self):
        clause = StallClause(moe="a.moe", condition=Var("b.moe"))  # positive moe use
        other = StallClause(moe="b.moe", condition=Var("x"))
        spec = FunctionalSpec(name="bad", clauses=[clause, other], inputs=["x"])
        assert not spec.is_monotone()
        assert spec.violating_clauses() == ["a.moe"]

    def test_describe_lists_every_clause(self):
        spec = two_stage_spec()
        text = spec.describe()
        assert "p.2.moe" in text and "p.1.moe" in text
        unicode_text = spec.describe(unicode_symbols=True)
        assert "→" in unicode_text and "¬" in unicode_text


class TestSpecTransformations:
    def test_substitute_inputs_refines_grant(self):
        spec = two_stage_spec()
        refined = spec.substitute_inputs({"p.gnt": Var("p.req")})
        condition = refined.condition_for("p.2.moe")
        assert eval_expr(condition, {"p.req": True}) is False
        assert "p.gnt" not in refined.input_signals()

    def test_substitute_moe_flag_rejected(self):
        spec = two_stage_spec()
        with pytest.raises(SpecificationError):
            spec.substitute_inputs({"p.2.moe": Var("x")})

    def test_restricted_to_subset(self):
        spec = two_stage_spec()
        sub = spec.restricted_to(["p.2.moe"])
        assert sub.moe_flags() == ["p.2.moe"]
        with pytest.raises(KeyError):
            spec.restricted_to(["nope"])

    def test_restriction_splits_example_per_pipe(self, example_spec):
        long_flags = [moe for moe in example_spec.moe_flags() if moe.startswith("long")]
        sub = example_spec.restricted_to(long_flags)
        assert set(sub.moe_flags()) == set(long_flags)


class TestPerformanceAndCombinedSpecs:
    def test_performance_clauses_mirror_functional(self):
        spec = two_stage_spec()
        performance = PerformanceSpec(spec)
        assert [clause.moe for clause in performance.clauses] == spec.moe_flags()
        assert performance.name == spec.name
        assert performance.functional is spec

    def test_performance_clause_formula_and_violation(self):
        spec = two_stage_spec()
        clause = PerformanceSpec(spec).clause_for("p.2.moe")
        env = {"p.req": False, "p.gnt": False, "p.2.moe": False}
        assert not eval_expr(clause.formula(), env)
        assert eval_expr(clause.violation_condition(), env)

    def test_performance_clause_lookup_error(self):
        with pytest.raises(KeyError):
            PerformanceSpec(two_stage_spec()).clause_for("nothing")

    def test_combined_formula_is_conjunction_of_iffs(self):
        spec = two_stage_spec()
        combined = CombinedSpec(spec)
        env = {
            "p.req": True,
            "p.gnt": False,
            "p.1.rtm": False,
            "p.2.moe": False,
            "p.1.moe": True,
        }
        assert eval_expr(combined.formula(), env)
        env["p.1.moe"] = False  # stalls without reason: combined spec violated
        assert not eval_expr(combined.formula(), env)

    def test_combined_moe_definition(self):
        spec = two_stage_spec()
        clause = CombinedSpec(spec).clauses[0]
        assert clause.moe_definition() == Not(spec.condition_for("p.2.moe"))

    def test_convenience_constructors(self):
        spec = two_stage_spec()
        assert isinstance(performance_spec_of(spec), PerformanceSpec)
        assert isinstance(combined_spec_of(spec), CombinedSpec)

    def test_describe_renders(self):
        spec = two_stage_spec()
        assert "SPEC_perf" in PerformanceSpec(spec).describe()
        assert "SPEC_combined" in CombinedSpec(spec).describe()
        assert "<->" in CombinedSpec(spec).describe()
