"""Tests for property checking, exhaustive campaigns, RTL synthesis and fault injection."""

import pytest

from repro.checking import (
    PropertyChecker,
    check_implementation,
    environment_assumptions,
    environment_formula,
    exhaustive_program_campaign,
    random_simulation_campaign,
)
from repro.expr import eval_expr
from repro.faults import FaultCampaign, FaultClass, FaultInjector
from repro.pipeline import (
    ClosedFormInterlock,
    Program,
    alu,
    bubble,
    reference_interlock,
    simulate,
)
from repro.assertions import testbench_assertions
from repro.spec import conservative_variant, symbolic_most_liberal
from repro.synth import (
    GateKind,
    Module,
    NetlistInterlock,
    Port,
    PortDirection,
    behavioural_verilog,
    module_to_verilog,
    synthesis_to_verilog,
    synthesize_interlock,
)
from repro.workloads import WorkloadGenerator, BALANCED, completion_contention_program


class TestEnvironmentAssumptions:
    def test_assumptions_hold_in_every_simulated_cycle(self, example_arch, example_spec):
        assumptions = environment_assumptions(example_arch)
        program = WorkloadGenerator(example_arch, seed=0).generate(BALANCED)
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        for record in trace.cycles:
            signals = record.signals()
            for assumption in assumptions:
                assert eval_expr(assumption, signals), record.cycle

    def test_environment_formula_is_conjunction(self, example_arch):
        formula = environment_formula(example_arch)
        names = formula.variables()
        assert "long.gnt" in names and "short.req" in names


class TestPropertyChecker:
    def test_reference_interlock_proves_everything(self, example_arch, example_spec, example_interlock):
        reports = check_implementation(example_spec, example_interlock, example_arch)
        assert reports["functional"].all_hold()
        assert reports["performance"].all_hold()
        assert reports["combined"].all_hold()

    def test_equivalence_with_derived(self, example_spec, example_interlock):
        checker = PropertyChecker(example_spec)
        report = checker.check_equivalence_with_derived(example_interlock)
        assert report.all_hold()

    def test_sat_backend_agrees_with_bdd(self, example_spec, example_interlock):
        bdd = PropertyChecker(example_spec, backend="bdd").check_performance(example_interlock)
        sat = PropertyChecker(example_spec, backend="sat").check_performance(example_interlock)
        assert bdd.all_hold() and sat.all_hold()

    def test_invalid_backend_rejected(self, example_spec):
        with pytest.raises(ValueError):
            PropertyChecker(example_spec, backend="z3")

    def test_no_bypass_interlock_needs_the_equivalence_check(self, example_arch, example_spec):
        """Mutually-justified stalls slip past the per-stage performance implications.

        The no-bypass interlock stalls both lock-step issue stages whenever a
        register is outstanding, even when the completion bus bypasses it.
        Each issue stage's stall is then "justified" by the other's (via the
        lock-step disjunct), so the Figure-3 implications hold — the paper
        itself notes that the functional spec alone can be satisfied by never
        moving.  Equivalence with the derived unique maximum-performance
        implementation does expose the pessimism.
        """
        pessimistic = ClosedFormInterlock.from_spec(
            conservative_variant(example_arch), name="no-bypass"
        )
        checker = PropertyChecker(example_spec, architecture=example_arch)
        assert checker.check_functional(pessimistic).all_hold()
        assert checker.check_performance(pessimistic).all_hold()
        equivalence = checker.check_equivalence_with_derived(pessimistic)
        assert not equivalence.all_hold()
        assert set(equivalence.failing_stages()) <= {"long.1.moe", "short.1.moe"}

    def test_counterexample_is_a_real_violation(self, example_arch, example_spec):
        fault = FaultInjector(example_spec, seed=4).extra_stall_fault("long.2.moe")
        checker = PropertyChecker(example_spec, architecture=example_arch)
        performance = checker.check_performance(fault.interlock)
        assert not performance.all_hold()
        failure = next(f for f in performance.failures() if f.moe == "long.2.moe")
        counterexample = dict(failure.counterexample)
        pessimistic = fault.interlock
        # Fill unmentioned inputs with False and confirm the implementation
        # stalls although the specification's stall condition is false.
        inputs = {name: counterexample.get(name, False) for name in example_spec.input_signals()}
        moe = pessimistic.compute_moe(inputs)
        assert moe[failure.moe] is False
        condition = example_spec.condition_for(failure.moe)
        signals = dict(inputs)
        signals.update(moe)
        assert not eval_expr(condition, signals)

    def test_missing_flag_rejected(self, example_spec, example_interlock):
        partial = ClosedFormInterlock({"long.4.moe": example_interlock.expression_for("long.4.moe")})
        checker = PropertyChecker(example_spec)
        with pytest.raises(ValueError):
            checker.check_functional(partial)

    def test_report_describe(self, example_spec, example_interlock):
        checker = PropertyChecker(example_spec)
        text = checker.check_functional(example_interlock).describe()
        assert "all properties proved" in text

    def test_fault_detection_matrix(self, example_arch, example_spec):
        checker = PropertyChecker(example_spec, architecture=example_arch)
        injector = FaultInjector(example_spec, seed=2)
        perf_fault = injector.extra_stall_fault("long.2.moe")
        func_fault = injector.missing_term_fault("long.1.moe", term_index=0)
        assert checker.check_functional(perf_fault.interlock).all_hold()
        assert not checker.check_performance(perf_fault.interlock).all_hold()
        assert not checker.check_functional(func_fault.interlock).all_hold()
        assert checker.check_performance(func_fault.interlock).all_hold()


class TestSimulationCampaigns:
    def test_random_campaign_clean_for_reference(self, example_arch, example_spec, example_interlock):
        result = random_simulation_campaign(
            example_arch,
            example_interlock,
            testbench_assertions(example_spec),
            num_programs=2,
            seed=3,
        )
        assert result.programs_run == 2
        assert not result.any_violation
        assert result.hazards == 0
        assert "programs run" in result.describe()

    def test_random_campaign_detects_fault(self, example_arch, example_spec):
        fault = FaultInjector(example_spec).extra_stall_fault("short.2.moe")
        result = random_simulation_campaign(
            example_arch,
            fault.interlock,
            testbench_assertions(example_spec),
            num_programs=2,
            seed=3,
            keep_reports=True,
        )
        assert result.any_violation
        assert result.first_failing_program is not None
        assert result.reports

    def test_exhaustive_campaign_enumerates_programs(self, example_arch, example_spec, example_interlock):
        alphabet = {
            "long": [alu("long", dst=0), bubble("long")],
            "short": [alu("short", dst=1)],
        }
        result = exhaustive_program_campaign(
            example_arch,
            example_interlock,
            testbench_assertions(example_spec),
            alphabet=alphabet,
            length=2,
        )
        assert result.programs_run == 4  # (2*1)^2 slot combinations
        assert not result.any_violation

    def test_exhaustive_campaign_respects_max_programs(self, example_arch, example_spec, example_interlock):
        alphabet = {
            "long": [alu("long", dst=0), bubble("long")],
            "short": [alu("short", dst=1), bubble("short")],
        }
        result = exhaustive_program_campaign(
            example_arch,
            example_interlock,
            testbench_assertions(example_spec),
            alphabet=alphabet,
            length=2,
            max_programs=5,
        )
        assert result.programs_run == 5


class TestSynthesis:
    def test_netlist_matches_closed_forms_on_random_inputs(self, example_spec, example_interlock):
        import random

        synthesis = synthesize_interlock(example_spec)
        netlist = synthesis.interlock()
        rng = random.Random(0)
        for _ in range(40):
            inputs = {name: bool(rng.getrandbits(1)) for name in example_spec.input_signals()}
            assert netlist.compute_moe(inputs) == example_interlock.compute_moe(inputs)

    def test_netlist_interlock_simulates_identically(self, example_arch, example_spec, example_interlock):
        synthesis = synthesize_interlock(example_spec)
        program = completion_contention_program(example_arch, length=15)
        reference_trace = simulate(example_arch, example_interlock, program)
        netlist_trace = simulate(example_arch, synthesis.interlock(), program)
        assert netlist_trace.num_cycles() == reference_trace.num_cycles()
        assert netlist_trace.hazard_free()

    def test_synthesised_interlock_proves_combined_spec(self, example_arch, example_spec):
        synthesis = synthesize_interlock(example_spec)
        checker = PropertyChecker(example_spec, architecture=example_arch)
        assert checker.check_combined(synthesis.interlock()).all_hold()

    def test_verilog_emission(self, example_spec):
        synthesis = synthesize_interlock(example_spec)
        gate_level = synthesis_to_verilog(synthesis)
        assert gate_level.count("module") >= 1 and "endmodule" in gate_level
        assert "assign" in gate_level
        behavioural = synthesis_to_verilog(synthesis, behavioural=True)
        assert "output wire long_4_moe" in behavioural
        assert behavioural.count("assign") == len(example_spec.moe_flags())

    def test_module_validation_catches_errors(self):
        module = Module(name="bad", ports=[Port("o", PortDirection.OUTPUT)])
        with pytest.raises(ValueError):
            module.validate()  # output never driven
        from repro.synth import Gate

        module = Module(
            name="bad2",
            ports=[Port("i", PortDirection.INPUT), Port("o", PortDirection.OUTPUT)],
            gates=[Gate(kind=GateKind.BUF, output="o", inputs=("ghost",))],
        )
        with pytest.raises(ValueError):
            module.validate()

    def test_gate_arity_validation(self):
        from repro.synth import Gate

        with pytest.raises(ValueError):
            Gate(kind=GateKind.NOT, output="x", inputs=())
        with pytest.raises(ValueError):
            Gate(kind=GateKind.AND, output="x", inputs=("a",))

    def test_module_evaluate_requires_all_inputs(self, example_spec):
        synthesis = synthesize_interlock(example_spec)
        with pytest.raises(KeyError):
            synthesis.module.evaluate({})

    def test_gate_count_positive(self, example_spec):
        synthesis = synthesize_interlock(example_spec)
        assert synthesis.gate_count() > len(example_spec.moe_flags())


class TestFaultInjection:
    def test_standard_fault_set_covers_every_stage_and_class(self, example_spec):
        faults = FaultInjector(example_spec, seed=0).standard_fault_set()
        targeted = {fault.target_moe for fault in faults}
        assert targeted == set(example_spec.moe_flags())
        classes = {fault.fault_class for fault in faults}
        assert classes == {FaultClass.PERFORMANCE, FaultClass.FUNCTIONAL, FaultClass.INITIALISATION}

    def test_fault_descriptions(self, example_spec):
        injector = FaultInjector(example_spec)
        fault = injector.extra_stall_fault("long.3.moe")
        assert "[performance]" in fault.describe()
        assert fault.mutated_spec is not None

    def test_missing_term_index_bounds(self, example_spec):
        injector = FaultInjector(example_spec)
        with pytest.raises(IndexError):
            injector.missing_term_fault("long.4.moe", term_index=99)

    def test_random_fault_reproducible(self, example_spec):
        import random

        injector = FaultInjector(example_spec, seed=7)
        first = injector.random_fault(random.Random(7))
        second = injector.random_fault(random.Random(7))
        assert first.target_moe == second.target_moe
        assert first.fault_class == second.fault_class

    def test_campaign_classifies_fault_classes_correctly(self, example_arch, example_spec):
        campaign = FaultCampaign(example_arch, example_spec, num_programs=1, max_cycles=250)
        injector = FaultInjector(example_spec, seed=1)
        faults = [
            injector.extra_stall_fault("short.2.moe"),
            injector.never_stall_fault("long.4.moe"),
            injector.bad_reset_fault("long.1.moe", value=False, cycles=3),
        ]
        summary = campaign.run(faults)
        assert summary.total() == 3
        assert summary.detected_by_simulation() == 3
        assert summary.correctly_classified() == 3
        rows = summary.rows()
        assert len(rows) == 3
        class_rows = summary.summary_rows()
        assert {row["fault class"] for row in class_rows} == {
            "performance",
            "functional",
            "initialisation",
        }
        perf_row = next(r for r in class_rows if r["fault class"] == "performance")
        assert perf_row["prop detected"] == "1/1"
