"""Tests for the CDCL SAT solver, DIMACS IO and the expression-level interface."""

import pytest

from repro.expr import And, Iff, Implies, Not, Or, Var, vars_
from repro.sat import (
    CdclSolver,
    check_consistent,
    check_equivalent,
    check_implies,
    check_satisfiable,
    check_valid,
    from_dimacs,
    solve_clauses,
    to_dimacs,
)
from repro.sat.solver import _luby


class TestSolverCore:
    def test_empty_problem_is_satisfiable(self):
        assert solve_clauses(0, []).satisfiable

    def test_single_unit_clause(self):
        result = solve_clauses(1, [(1,)])
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_contradictory_units(self):
        assert not solve_clauses(1, [(1,), (-1,)]).satisfiable

    def test_empty_clause_unsatisfiable(self):
        assert not solve_clauses(1, [()]).satisfiable

    def test_simple_satisfiable(self):
        result = solve_clauses(3, [(1, 2), (-1, 3), (-2, -3)])
        assert result.satisfiable
        assignment = result.assignment
        assert (assignment[1] or assignment[2]) and (not assignment[1] or assignment[3])
        assert not (assignment[2] and assignment[3])

    def test_pigeonhole_unsatisfiable(self):
        # 3 pigeons in 2 holes: variables p_{i,h} = 2*i + h + 1.
        clauses = []
        for pigeon in range(3):
            clauses.append((2 * pigeon + 1, 2 * pigeon + 2))
        for hole in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append((-(2 * p1 + hole + 1), -(2 * p2 + hole + 1)))
        assert not solve_clauses(6, clauses).satisfiable

    def test_tautological_clause_skipped(self):
        result = solve_clauses(2, [(1, -1), (2,)])
        assert result.satisfiable
        assert result.assignment[2] is True

    def test_duplicate_literals_collapsed(self):
        assert solve_clauses(1, [(1, 1)]).satisfiable

    def test_model_satisfies_all_clauses(self):
        clauses = [(1, -2, 3), (-1, 2), (-3, -2), (2, 3), (1, -3)]
        result = solve_clauses(3, clauses)
        assert result.satisfiable
        model = result.assignment
        for clause in clauses:
            assert any(
                model.get(abs(lit), False) == (lit > 0) for lit in clause
            ), f"model violates clause {clause}"

    def test_assumptions_satisfiable_and_unsatisfiable(self):
        solver = CdclSolver(2, [(1, 2)])
        assert solver.solve(assumptions=[-1]).satisfiable
        solver = CdclSolver(2, [(1,), (-1, 2)])
        assert not solver.solve(assumptions=[-2]).satisfiable

    def test_solver_reusable_after_solve(self):
        solver = CdclSolver(2, [(1, 2)])
        first = solver.solve()
        second = solver.solve(assumptions=[-1])
        assert first.satisfiable and second.satisfiable

    def test_statistics_populated(self):
        result = solve_clauses(3, [(1, 2), (-1, 3), (-2, -3), (2, 3)])
        assert result.satisfiable
        assert result.propagations >= 0
        assert result.decisions >= 0


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            _luby(0)


class TestDimacs:
    def test_roundtrip(self):
        clauses = [(1, -2), (2, 3), (-1,)]
        text = to_dimacs(3, clauses, comments=["example"])
        num_vars, parsed = from_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    def test_header_and_comment_format(self):
        text = to_dimacs(2, [(1, 2)], comments=["hello"])
        assert text.splitlines()[0] == "c hello"
        assert "p cnf 2 1" in text

    def test_parse_rejects_malformed_problem_line(self):
        with pytest.raises(ValueError):
            from_dimacs("p cnf 2\n1 0\n")

    def test_parse_rejects_clause_count_mismatch(self):
        with pytest.raises(ValueError):
            from_dimacs("p cnf 2 2\n1 0\n")

    def test_parse_ignores_comments_and_blank_lines(self):
        num_vars, clauses = from_dimacs("c comment\n\np cnf 2 1\n1 -2 0\n")
        assert num_vars == 2 and clauses == [(1, -2)]


class TestExpressionInterface:
    def test_check_satisfiable_returns_model(self):
        a, b = vars_("a", "b")
        decision = check_satisfiable(And(a, Not(b)))
        assert decision
        assert decision.model == {"a": True, "b": False}

    def test_check_satisfiable_unsat(self):
        a = Var("a")
        assert not check_satisfiable(And(a, Not(a)))

    def test_check_valid(self):
        a, b = vars_("a", "b")
        assert check_valid(Or(a, Not(a)))
        decision = check_valid(Implies(a, b))
        assert not decision
        assert decision.model["a"] is True and decision.model["b"] is False

    def test_check_equivalent(self):
        a, b, c = vars_("a", "b", "c")
        assert check_equivalent(And(a, Or(b, c)), Or(And(a, b), And(a, c)))
        assert not check_equivalent(Implies(a, b), Implies(b, a))

    def test_check_implies(self):
        a, b = vars_("a", "b")
        assert check_implies(And(a, b), a)
        assert not check_implies(a, And(a, b))

    def test_check_consistent(self):
        a, b = vars_("a", "b")
        assert check_consistent(a, Implies(a, b), b)
        assert not check_consistent(a, Not(a))
        assert check_consistent()

    def test_agreement_with_bdd_backend(self):
        from repro.bdd import ExprBddContext

        a, b, c = vars_("a", "b", "c")
        formulas = [
            Iff(Implies(a, b), Or(Not(a), b)),
            Implies(And(a, b), c),
            And(a, Not(a)),
            Or(a, b, c),
        ]
        context = ExprBddContext()
        for formula in formulas:
            assert bool(check_valid(formula)) == context.is_valid(formula)
            assert bool(check_satisfiable(formula)) == context.is_satisfiable(formula)
