"""Tests for the contract lint (repro.devtools): rules, noqa, CLI, repo hygiene.

The fixture corpus under ``tests/fixtures/contracts/`` carries one
``bad``/``good``/``noqa`` triple per rule: the bad file must trip its
rule (and only its rule), the good file must be clean, and the noqa file
contains the same violation silenced with ``# repro: noqa[RPLnnn]``.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint import (
    LintError,
    all_rules,
    lint_paths,
    render_json,
    render_text,
    resolve_codes,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "contracts"

ALL_CODES = (
    "RPL001",
    "RPL002",
    "RPL003",
    "RPL004",
    "RPL005",
    "RPL006",
    "RPL007",
)


def fixture(code, kind):
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    assert path.is_file(), path
    return str(path)


# ---------------------------------------------------------------------------
# The corpus: every rule catches its true positive and stays quiet otherwise.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_trips_exactly_its_rule(code):
    findings = lint_paths([fixture(code, "bad")])
    assert findings, f"{code} bad fixture produced no findings"
    assert {f.rule for f in findings} == {code}
    # Spans are real positions inside the file.
    text = Path(fixture(code, "bad")).read_text().splitlines()
    for f in findings:
        assert 1 <= f.line <= len(text)
        assert f.col >= 0
        assert f.message


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_clean(code):
    assert lint_paths([fixture(code, "good")]) == []


@pytest.mark.parametrize("code", ALL_CODES)
def test_noqa_fixture_is_suppressed(code):
    assert lint_paths([fixture(code, "noqa")]) == []
    # The suppression is doing the work: the same file minus its noqa
    # comments trips the rule again.
    stripped = "\n".join(
        line.split("# repro: noqa")[0]
        for line in Path(fixture(code, "noqa")).read_text().splitlines()
    )
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
        handle.write(stripped)
    findings = lint_paths([handle.name])
    assert {f.rule for f in findings} == {code}


def test_rule_filter_restricts_findings():
    findings = lint_paths([str(FIXTURES)], resolve_codes("RPL003"))
    assert findings
    assert {f.rule for f in findings} == {"RPL003"}


def test_unknown_rule_code_rejected():
    with pytest.raises(LintError):
        resolve_codes("RPL999")


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = lint_paths([str(bad)])
    assert len(findings) == 1
    assert findings[0].rule == "RPL000"


def test_registry_exposes_every_rule():
    registry = all_rules()
    assert sorted(registry) == sorted(ALL_CODES)
    for code, rule_class in registry.items():
        assert rule_class.code == code
        assert rule_class.summary


# ---------------------------------------------------------------------------
# Renderers and the CLI verb.
# ---------------------------------------------------------------------------


def test_render_text_clean_and_findings():
    assert render_text([]) == "contract lint: clean"
    findings = lint_paths([fixture("RPL001", "bad")])
    text = render_text(findings)
    assert "RPL001" in text
    assert "rpl001_bad.py" in text


def test_render_json_shape():
    findings = lint_paths([fixture("RPL002", "bad")])
    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings)
    entry = payload["findings"][0]
    assert set(entry) == {"path", "line", "col", "rule", "message"}
    assert entry["rule"] == "RPL002"


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_lint_bad_fixture_exits_nonzero():
    code, output = run_cli("lint", fixture("RPL005", "bad"))
    assert code == 1
    assert "RPL005" in output


def test_cli_lint_json_and_rules_filter():
    code, output = run_cli(
        "lint", "--json", "--rules", "RPL001", fixture("RPL005", "bad")
    )
    assert code == 0
    assert json.loads(output) == {"count": 0, "findings": []}


def test_cli_lint_clean_path_exits_zero(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    code, output = run_cli("lint", str(tmp_path))
    assert code == 0
    assert "clean" in output


# ---------------------------------------------------------------------------
# Repo hygiene: the shipped tree lints clean, via the CI wrapper too.
# ---------------------------------------------------------------------------


def test_repository_lints_clean():
    paths = [str(REPO_ROOT / name) for name in ("src", "scripts")]
    findings = lint_paths(paths)
    assert findings == [], render_text(findings)
