#!/usr/bin/env bash
# End-to-end smoke of the verification service over a real socket:
# start `repro serve`, verify an architecture through the HTTP API,
# prove the warm-cache fast path on resubmission, then SIGTERM the
# daemon and require a clean graceful exit.
#
#   scripts/service_smoke.sh [port]
#
# Uses only the repo and the Python stdlib; safe to run locally (state
# goes to a temp directory that is removed on exit).

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

PORT="${1:-8791}"
ARCH="fam-r4w2d5s1-bypass"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== starting repro serve on port $PORT =="
python -m repro serve --port "$PORT" --store "$WORKDIR/store" --workers 1 \
    >"$WORKDIR/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
    if python -m repro jobs --port "$PORT" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "error: daemon exited during startup" >&2
        cat "$WORKDIR/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done
python -m repro jobs --port "$PORT" >/dev/null  # fail loudly if still down

echo "== submit + follow: $ARCH =="
python -m repro submit --port "$PORT" --arch "$ARCH" \
    --stages properties,derive --timeout 300

echo "== resubmit must answer from the warm cache =="
python - "$PORT" "$ARCH" <<'EOF'
import sys, time
from repro.service import ServiceClient

port, arch = int(sys.argv[1]), sys.argv[2]
client = ServiceClient(port=port)
start = time.monotonic()
job = client.submit(arch=arch, stages="properties,derive")["job"]
elapsed = time.monotonic() - start
assert job["state"] == "done" and job["ok"], job
assert job["from_cache"], "resubmission was not served from the cache"
# The acceptance bar is 100 ms; allow slack for loaded CI runners.
assert elapsed < 2.0, f"cached submission took {elapsed:.3f}s"
stats = client.store()["store"]["stats"]
assert stats["hits"] >= 1, stats
print(f"cached resubmission answered in {elapsed * 1000:.1f} ms "
      f"(store hits: {stats['hits']})")
EOF

echo "== /v1/metrics must expose nonzero job counters =="
python - "$PORT" <<'EOF'
import re
import sys

from repro.service import ServiceClient

client = ServiceClient(port=int(sys.argv[1]))
text = client.metrics()
match = re.search(r'^repro_service_jobs_total\{state="done"\} (\d+)$', text, re.M)
assert match and int(match.group(1)) >= 1, "no done jobs in /v1/metrics"
assert re.search(r"^repro_service_submissions_total [1-9]", text, re.M), \
    "no submissions counted"
samples = client.metrics(fmt="json")
cached = [s for s in samples if s["name"] == "repro_service_cache_answers_total"]
assert cached and cached[0]["value"] >= 1, "warm resubmission not counted"
print(f"metrics endpoint OK: {match.group(1)} done job(s), "
      f"{len(samples)} samples in the JSON rendering")
EOF

echo "== graceful shutdown on SIGTERM =="
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
    echo "error: daemon did not exit cleanly" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
fi
SERVER_PID=""
grep -q "service stopped" "$WORKDIR/serve.log"

echo "service smoke: OK"
