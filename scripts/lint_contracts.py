#!/usr/bin/env python
"""Run the repository's contract lint (RPL rules) as a CI gate.

Thin wrapper over :mod:`repro.devtools.lint` so CI does not depend on
the package being installed: it prepends ``src/`` to ``sys.path``, lints
``src/`` and ``scripts/`` (or the paths given on the command line), and
exits non-zero when any finding survives ``# repro: noqa[...]``
suppression.

Usage: python scripts/lint_contracts.py [--json] [--rules RPL003,...] [paths...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.devtools.lint import (  # noqa: E402  (path bootstrap above)
    LintError,
    lint_paths,
    render_json,
    render_text,
    resolve_codes,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", dest="json_output",
                        help="emit findings as JSON")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule codes to run (default: all)")
    args = parser.parse_args(argv)

    paths = args.paths or [
        str(_REPO_ROOT / name)
        for name in ("src", "scripts")
        if (_REPO_ROOT / name).is_dir()
    ]
    try:
        codes = resolve_codes(args.rules)
        findings = lint_paths(paths, codes)
    except LintError as exc:
        print(f"lint_contracts: {exc}", file=sys.stderr)
        return 2
    if args.json_output:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
