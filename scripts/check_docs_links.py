#!/usr/bin/env python
"""Check every intra-repo markdown link (and anchor) in the docs.

Scans the repository's ``*.md`` files — the root documents, ``docs/``
and any other tracked markdown — and verifies that every relative link
``[text](target)`` resolves to a file in the repo, and that a
``#fragment`` on a markdown target names a real heading in that file
(GitHub slug rules: lowercase, punctuation stripped, spaces to dashes).

External links (``http://``/``https://``/``mailto:``) are not fetched —
this gate is about keeping the repo self-consistent offline, not about
the health of the wider web.  Exit 1 with one line per broken link.

Usage: python scripts/check_docs_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

#: Inline markdown links; deliberately simple — no nested brackets in our docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")
#: Characters GitHub strips when slugifying a heading.
_SLUG_STRIP = re.compile(r"[^\w\- ]")
_SKIP_DIRS = {".git", ".campaign-results", "__pycache__", ".pytest_cache"}


def _markdown_files(root: Path) -> List[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def _out_of_fence_lines(text: str):
    """Yield (lineno, line) outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line (close enough for ours)."""
    # Strip inline emphasis markers but keep word-internal underscores
    # (GitHub keeps them: `REPRO_PURE_ARRAY` -> repro_pure_array).
    text = re.sub(r"[*`]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links: keep the text
    text = _SLUG_STRIP.sub("", text.lower())
    return text.strip().replace(" ", "-")


def _anchors(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    if path not in cache:
        slugs: Set[str] = set()
        counts: Dict[str, int] = {}
        for _, line in _out_of_fence_lines(path.read_text(encoding="utf-8")):
            match = _HEADING.match(line)
            if match:
                slug = _slugify(match.group(2))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check(root: Path) -> List[str]:
    problems: List[str] = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for md in _markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for lineno, line in _out_of_fence_lines(text):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                where = f"{md.relative_to(root)}:{lineno}"
                path_part, _, fragment = target.partition("#")
                dest = md if not path_part else (md.parent / path_part).resolve()
                if not dest.exists():
                    problems.append(f"{where}: broken link: {target}")
                    continue
                if fragment:
                    if dest.suffix != ".md" or dest.is_dir():
                        continue  # anchors only checked inside markdown
                    if fragment not in _anchors(dest, anchor_cache):
                        problems.append(
                            f"{where}: broken anchor: {target} "
                            f"(no heading slug {fragment!r} in "
                            f"{dest.relative_to(root)})"
                        )
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(_markdown_files(root))
    if problems:
        print(f"docs link check: {len(problems)} broken link(s) across "
              f"{checked} markdown file(s)", file=sys.stderr)
        return 1
    print(f"docs link check: OK ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
