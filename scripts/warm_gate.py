#!/usr/bin/env python
"""CI gate for the artifact-backed warm campaign path.

Runs the quick 24-config family sweep three times against one result
store and enforces the incremental-campaign contract end to end:

1. **cold** — empty store, persistent workers started fresh: every job
   verifies from scratch and populates the store (job results, per-stage
   results, binary derivation artifacts);
2. **warm** — same campaign again: every job must answer from the
   content-hashed store, at least ``--speedup`` times faster than cold,
   with nonzero cache hits;
3. **incremental** — the same sweep with a different workload seed under
   ``--incremental``: every job key changes, yet the structural stages
   (properties/derive/maximality/obligations) must replay from the store
   and the derivations must load from binary artifacts (nonzero artifact
   hits), re-executing only the workload-dependent stages.

Exits non-zero when any phase fails its contract and writes a JSON stats
summary (``--out``) for the CI artifact upload.
"""

import argparse
import json
import sys
import tempfile
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--speedup",
        type=float,
        default=5.0,
        help="minimum cold/warm wall-clock ratio (default: 5.0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default: 2)"
    )
    parser.add_argument(
        "--out", default="store-stats.json", help="write the phase stats here"
    )
    args = parser.parse_args()

    from repro.campaign import ResultStore, run_campaign, shutdown_warm_pool
    from repro.perf.bench import _setup_campaign_sweep

    spec = _setup_campaign_sweep(quick=True)
    seeded = type(spec)(
        name=spec.name + "-reseeded",
        jobs=tuple(
            type(job)(**dict(job.to_dict(), workload_seed=job.workload_seed + 1))
            for job in spec.jobs
        ),
        workers=spec.workers,
    )

    failures = []
    phases = {}
    with tempfile.TemporaryDirectory(prefix="warm-gate-") as root:
        store = ResultStore(root)

        def phase(name, campaign, incremental=False):
            start = time.perf_counter()
            report = run_campaign(
                campaign, store=store, workers=args.workers, incremental=incremental
            )
            wall = time.perf_counter() - start
            phases[name] = {
                "wall_seconds": round(wall, 6),
                "total": report.total(),
                "cached": len(report.cached()),
                "all_ok": report.all_ok(),
                "stats": report.store_stats.as_dict(),
            }
            print(
                f"[{name}] {report.total()} jobs, {len(report.cached())} cached, "
                f"wall {wall:.3f}s, stats {report.store_stats.as_dict()}"
            )
            if not report.all_ok():
                failures.append(f"{name}: campaign did not verify every job")
            return report, wall

        cold_report, cold_wall = phase("cold", spec)
        if cold_report.cached():
            failures.append("cold: expected an empty store, found cached jobs")

        warm_report, warm_wall = phase("warm", spec)
        if len(warm_report.cached()) != warm_report.total():
            failures.append(
                f"warm: only {len(warm_report.cached())}/{warm_report.total()} "
                "jobs answered from the store"
            )
        if warm_report.cache_hits() == 0:
            failures.append("warm: zero cache hits")
        ratio = cold_wall / warm_wall if warm_wall > 0 else float("inf")
        phases["warm"]["speedup_vs_cold"] = round(ratio, 2)
        if ratio < args.speedup:
            failures.append(
                f"warm: only {ratio:.1f}x faster than cold "
                f"(required {args.speedup:.1f}x)"
            )

        # New seed -> new job keys; fresh worker state so the artifact
        # files (not pool warmth) must carry the structural stages.
        shutdown_warm_pool()
        inc_report, _ = phase("incremental", seeded, incremental=True)
        if inc_report.cached():
            failures.append("incremental: job keys should have changed with the seed")
        inc_stats = inc_report.store_stats
        if inc_stats.artifact_hits == 0:
            failures.append("incremental: zero artifact hits (derivations re-derived)")
        if inc_stats.stage_hits == 0:
            failures.append("incremental: zero stage hits (nothing replayed)")
        if inc_stats.corrupt:
            failures.append(f"incremental: {inc_stats.corrupt} corrupt store entries")

        phases["store"] = {
            "artifacts": len(store.artifact_keys()),
            "stages": len(store.stage_keys()),
            "jobs": len(store),
        }
    shutdown_warm_pool()

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump({"phases": phases, "failures": failures}, handle, indent=2)
        handle.write("\n")
    print(f"stats written to {args.out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}")
        return 1
    print(
        f"warm gate passed: warm {phases['warm']['speedup_vs_cold']}x faster, "
        f"{phases['store']['artifacts']} artifacts, "
        f"{phases['store']['stages']} stage results"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
