#!/usr/bin/env bash
# One-command CI gate: tier-1 tests followed by the quick benchmark check.
#
#   scripts/ci.sh
#
# Fails when any test fails or when a quick-size benchmark scenario regresses
# more than the tolerance against the committed BENCH_QUICK.json baseline.
# Regenerate the baseline after an intentional performance change with:
#
#   PYTHONPATH=src python -m repro bench --quick --repeat 3 --out BENCH_QUICK.json

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== quick benchmark gate =="
python -m repro bench --quick --check --baseline BENCH_QUICK.json
