#!/usr/bin/env bash
# One-command CI gate: lint, tier-1 tests, then the quick benchmark check.
#
#   scripts/ci.sh                    run the full gate
#   scripts/ci.sh --update-baseline  regenerate BENCH_QUICK.json and exit
#
# The gate fails when the lint stage finds an error, when any test fails,
# or when a quick-size benchmark scenario regresses more than the
# tolerance against the committed BENCH_QUICK.json baseline (beyond an
# absolute slack that absorbs timer noise on millisecond scenarios).  A
# scenario missing from the baseline (i.e. newer than it) is reported as
# a warning and skipped, not failed — roll the baseline to start gating it.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

BASELINE=BENCH_QUICK.json

if [[ "${1:-}" == "--update-baseline" ]]; then
    echo "== regenerating $BASELINE (quick sizes, 3 repetitions) =="
    python -m repro bench --quick --repeat 3 --out "$BASELINE"
    echo "baseline updated; commit $BASELINE with the change that moved it"
    exit 0
elif [[ -n "${1:-}" ]]; then
    echo "error: unknown option '$1' (supported: --update-baseline)" >&2
    exit 2
fi

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests
else
    echo "ruff not installed — skipping lint stage (CI installs it; locally: pip install ruff)"
fi

echo "== contract lint (RPL rules) =="
python scripts/lint_contracts.py

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== pydoc render smoke (public API docstrings) =="
# pydoc's CLI exit codes are unreliable across versions; render in-process
# so a module that fails to import or document fails the gate loudly.
python - <<'EOF'
import pydoc

MODULES = [
    "repro.devtools",
    "repro.devtools.lint",
    "repro.devtools.rules",
    "repro.devtools.sanitizer",
    "repro.campaign",
    "repro.campaign.orchestrator",
    "repro.campaign.spec",
    "repro.campaign.store",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.service",
    "repro.service.client",
    "repro.service.daemon",
]
for name in MODULES:
    text = pydoc.render_doc(name, renderer=pydoc.plaintext)
    assert len(text) > 200, f"suspiciously thin pydoc for {name}"
print(f"pydoc renders cleanly for {len(MODULES)} modules")
EOF

echo "== docs link check =="
python scripts/check_docs_links.py

echo "== quick benchmark gate =="
if [[ -n "${REPRO_SANITIZE:-}" ]]; then
    # The sanitizer quarantines freed slots and validates every operand —
    # deliberately slower.  Timing it against the plain-kernel baseline
    # would only measure the sanitizer, so the gate is skipped.
    echo "REPRO_SANITIZE is set — skipping the benchmark gate (sanitized kernel is intentionally slower)"
    exit 0
fi
if [[ -n "${REPRO_TRACE:-}" ]]; then
    # Tracing records a span per stage/job and writes NDJSON traces; the
    # baseline was measured untraced, so the comparison would gate on the
    # tracer, not the kernel.
    echo "REPRO_TRACE is set — skipping the benchmark gate (traced runs are not comparable to the untraced baseline)"
    exit 0
fi
if [[ ! -f "$BASELINE" ]]; then
    echo "error: benchmark baseline $BASELINE is missing." >&2
    echo "Every clone ships one; if you removed it intentionally, regenerate it with:" >&2
    echo "    scripts/ci.sh --update-baseline" >&2
    echo "and commit the result." >&2
    exit 1
fi
python -m repro bench --quick --check --baseline "$BASELINE"
