"""Drive the verification service programmatically: submit, stream, reuse.

A complete client session against a ``repro serve`` daemon:

1. connect (or, when nothing is listening, self-host a daemon on a
   background thread — handy for notebooks and this script's smoke test),
2. submit one architecture and follow its event stream live,
3. submit a two-architecture campaign at a higher priority,
4. resubmit the finished work and watch it answer from the shared result
   store in milliseconds,
5. read the store's telemetry.

Run with ``python examples/service_client.py`` — against your own daemon
by exporting ``REPRO_SERVICE_PORT`` (see ``docs/operations.md``), or
standalone with no setup at all.
"""

import os
import tempfile
import time

from repro.campaign import CampaignSpec, JobSpec
from repro.service import ServiceClient, ServiceError, start_service


def run_session(client: ServiceClient, arch: str, stages: str) -> None:
    print(f"service: repro {client.health()['version']} "
          f"at {client.host}:{client.port}")

    # -- 2. one architecture, followed live ---------------------------------------
    submitted = client.submit(arch=arch, stages=stages)
    job = submitted["job"]
    print(f"submitted {job['id']} ({arch}), state={job['state']}")

    def narrate(event):
        if event["kind"] == "result":
            verdict = "ok" if event["ok"] else "FAIL"
            print(f"  [{event['arch']}] {verdict} in {event['seconds']:.3f}s")
        elif event["kind"] == "state":
            print(f"  -> {event['state']}")

    final = client.wait(job["id"], timeout=600, on_event=narrate)
    assert final["state"] == "done", final
    print(f"verdict: ok={final['ok']}, "
          f"{final['report']['passed']}/{final['report']['total']} passed")

    # -- 3. a campaign, submitted as a spec object --------------------------------
    campaign = CampaignSpec(
        name="example-pair",
        jobs=(
            JobSpec(arch=arch, stages=_stage_tuple(stages)),
            JobSpec(arch=arch, stages=_stage_tuple(stages), workload_seed=1),
        ),
    )
    pair = client.submit(campaign=campaign.to_dict(), priority=5)
    pair_final = client.wait(pair["job"]["id"], timeout=600)
    print(f"campaign {pair_final['id']}: ok={pair_final['ok']} "
          f"({pair_final['report']['total']} jobs)")

    # -- 4. the warm-cache fast path ----------------------------------------------
    start = time.monotonic()
    again = client.submit(arch=arch, stages=stages)["job"]
    elapsed_ms = (time.monotonic() - start) * 1000
    assert again["state"] == "done" and again["from_cache"], again
    print(f"resubmission answered from the store in {elapsed_ms:.1f} ms")

    # -- 5. store telemetry -------------------------------------------------------
    store = client.store()["store"]
    if store is not None:
        print(f"store: {store['entries']} entries, "
              f"{store['stats']['hits']} hits / {store['stats']['misses']} misses")


def _stage_tuple(stages: str):
    return tuple(part.strip() for part in stages.split(",") if part.strip())


def main(arch: str = "fam-r4w2d5s1-bypass",
         stages: str = "properties,derive,maximality") -> None:
    port = int(os.environ.get("REPRO_SERVICE_PORT", "8765"))
    client = ServiceClient(port=port)
    try:
        client.health()
    except ServiceError:
        # No daemon listening: self-host one for the duration of the session.
        print(f"no daemon on port {port}; self-hosting one on a background thread")
        with tempfile.TemporaryDirectory() as tmp:
            with start_service(store_root=tmp, workers=1) as handle:
                run_session(handle.client(), arch, stages)
        return
    run_session(client, arch, stages)


if __name__ == "__main__":
    main()
