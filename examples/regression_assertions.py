"""Regression guarding: the spec as a permanent part of the testbench.

Section 4 of the paper: "The specification of the FirePath pipeline design
is now a permanent part of the processor's testbench.  It ensures that any
modifications of the pipeline flow control logic preserve the initial
intent."

This example plays out that workflow on the Figure 1 architecture.  A
designer "improves" the interlock twice:

* change A drops the completion-bus term from the long pipe's completion
  stall — a *functional* bug (a required stall is missing, so a completing
  instruction can be clobbered when it loses arbitration);
* change B adds an extra stall of the long pipe's issue stage whenever the
  short pipe requests the completion bus — a *performance* bug (a stall the
  functional specification does not justify).

Both modified interlocks are run through the same regression flow: random
workloads with the generated assertions attached, then exhaustive checking.
Change A trips the functional assertions (and real hazards appear in the
trace); change B is subtler — the extra stall at the lock-stepped issue
pair is mutually "justified" by the partner stage, so the per-stage
performance assertions stay silent even though throughput visibly drops.
The equivalence check against the derived maximum-performance interlock is
what pins it down, exactly as DESIGN.md's findings section describes.

Run with ``python examples/regression_assertions.py``.
"""

from repro.archs import example_architecture
from repro.assertions import AssertionKind, monitor_trace, testbench_assertions
from repro.checking import PropertyChecker
from repro.expr import Var
from repro.faults import FaultInjector
from repro.pipeline import ClosedFormInterlock, simulate
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.workloads import WorkloadGenerator, WorkloadProfile


def regression_run(architecture, functional, interlock, label):
    """Simulate one interlock under the regression testbench and report."""
    assertions = testbench_assertions(functional)
    # A contention-heavy workload keeps both completion stages busy.
    profile = WorkloadProfile(length=60, dependency_rate=0.4, store_rate=0.0)
    program = WorkloadGenerator(architecture, seed=11).generate(profile)
    trace = simulate(architecture, interlock, program)
    report = monitor_trace(trace, assertions)

    functional_violations = report.violation_count(AssertionKind.FUNCTIONAL)
    performance_violations = report.violation_count(AssertionKind.PERFORMANCE)
    print(f"--- {label} ---")
    print(f"  cycles: {trace.num_cycles()}, retired: {trace.retired_instructions}, "
          f"hazards: {trace.hazard_count()}")
    print(f"  functional assertion violations : {functional_violations}")
    print(f"  performance assertion violations: {performance_violations}")
    first = report.first_violation()
    if first is not None:
        print(f"  first violation: {first.describe()}")
    print()
    return report, trace


def main() -> None:
    architecture = example_architecture(num_registers=4)
    functional = build_functional_spec(architecture)
    derivation = symbolic_most_liberal(functional)
    reference = ClosedFormInterlock.from_derivation(derivation)

    print("=== Baseline: the derived maximum-performance interlock ===")
    baseline_report, baseline_trace = regression_run(
        architecture, functional, reference, "baseline interlock"
    )
    if not baseline_report.clean():
        raise SystemExit("baseline interlock should not violate its own spec")

    injector = FaultInjector(functional, seed=3)

    # Change A: a functional bug — the completion stage no longer stalls when
    # it loses the completion-bus grant.
    change_a = injector.missing_term_fault("long.4.moe", term_index=0)
    report_a, _ = regression_run(architecture, functional, change_a.interlock,
                                 f"change A ({change_a.describe()})")

    # Change B: a performance bug — an extra stall term added to the long
    # pipe's issue stage.
    change_b = injector.extra_stall_fault("long.1.moe", trigger=Var("short.req"))
    report_b, trace_b = regression_run(architecture, functional, change_b.interlock,
                                       f"change B ({change_b.describe()})")

    # The same classification, but exhaustively, with the property checker.
    checker = PropertyChecker(functional, architecture)
    a_functional = checker.check_functional(change_a.interlock).all_hold()
    b_functional = checker.check_functional(change_b.interlock).all_hold()
    b_performance = checker.check_performance(change_b.interlock).all_hold()
    b_maximum = checker.check_equivalence_with_derived(change_b.interlock).all_hold()
    print("=== Exhaustive property checking of both changes ===")
    print("change A functional check          :", "PASS" if a_functional else "FAIL")
    print("change B functional check          :", "PASS" if b_functional else "FAIL")
    print("change B per-stage performance     :", "PASS" if b_performance else "FAIL")
    print("change B maximum-performance check :", "PASS" if b_maximum else "FAIL")
    print()

    slowdown = trace_b.num_cycles() - baseline_trace.num_cycles()
    print(f"Change B costs {slowdown} extra cycles on the regression workload even though "
          "the per-stage performance assertions stay silent: the unnecessary stall at the "
          "lock-stepped issue pair is 'justified' by the partner stage it drags down with "
          "it.  The maximum-performance (equivalence) check catches it exhaustively.")

    ok = (
        report_a.violation_count(AssertionKind.FUNCTIONAL) > 0
        and not a_functional
        and b_functional
        and not b_maximum
        and slowdown > 0
    )
    if not ok:
        raise SystemExit("regression flow failed to classify the planted changes")
    print()
    print("Change A was caught by the functional assertions in simulation and refuted by "
          "the functional property check; change B was caught by the maximum-performance "
          "check (and shows up as a throughput regression).")


if __name__ == "__main__":
    main()
