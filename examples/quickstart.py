"""Quickstart: from an architecture description to a checked maximum-performance spec.

This walks the full method of the paper on its own example architecture
(Figure 1):

1. describe the pipeline control structure,
2. build the functional specification (Figure 2),
3. check the Section 3.1 preconditions,
4. derive the maximum performance specification (Figure 3) by fixed-point
   iteration,
5. generate testbench assertions and check them against a cycle-accurate
   simulation driven by the derived interlock.

Run with ``python examples/quickstart.py``.
"""

from repro.archs import example_architecture
from repro.assertions import monitor_trace, testbench_assertions
from repro.pipeline import reference_interlock, simulate
from repro.spec import (
    build_functional_spec,
    check_all_properties,
    derive_performance_spec,
    symbolic_most_liberal,
)
from repro.workloads import WorkloadGenerator


def main(num_registers: int = 8) -> None:
    # 1. The paper's Figure 1 architecture: a long pipe (4 stages) and a
    #    short pipe (2 stages) sharing a lock-stepped issue stage, one
    #    completion bus, an 8-register scoreboard and a WAIT input.
    #    (``num_registers`` shrinks the scoreboard for smoke-test runs.)
    architecture = example_architecture(num_registers=num_registers)
    print(architecture.describe())
    print()
    print(architecture.ascii_diagram())
    print()

    # 2. Figure 2: the functional specification (condition -> not moe).
    functional = build_functional_spec(architecture)
    print("=== Functional specification (Figure 2) ===")
    print(functional.describe(unicode_symbols=True))
    print()

    # 3. The Section 3.1 preconditions of the derivation.
    report = check_all_properties(functional)
    print("=== Section 3.1 property checks ===")
    print(report.describe())
    if not report.all_hold():
        raise SystemExit("the functional specification does not admit the derivation")
    print()

    # 4. Figure 3: the maximum performance specification (not moe -> condition),
    #    justified by the fixed-point derivation of the most liberal moe vector.
    performance = derive_performance_spec(functional)
    derivation = symbolic_most_liberal(functional)
    print("=== Maximum performance specification (Figure 3) ===")
    print(performance.describe(unicode_symbols=True))
    print()
    print("=== Most liberal moe assignment (closed form) ===")
    print(derivation.describe())
    print()

    # 5. Simulate the derived interlock on a random workload and check every
    #    generated assertion on every cycle, exactly as a testbench would.
    assertions = testbench_assertions(functional)
    program = WorkloadGenerator(architecture, seed=2026).generate()
    trace = simulate(architecture, reference_interlock(functional), program)
    monitor_report = monitor_trace(trace, assertions)

    print("=== Simulation with testbench assertions ===")
    print(trace.describe())
    print(monitor_report.describe())
    if not monitor_report.clean():
        raise SystemExit("assertion violations on the reference interlock (unexpected)")
    print("No functional or performance assertion fired: the derived interlock "
          "stalls exactly when the specification requires it to.")


if __name__ == "__main__":
    main()
