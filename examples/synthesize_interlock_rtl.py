"""Synthesise maximum-performance interlock RTL from the functional spec.

Section 5 of the paper sets out the ambition to "generate the HDL code that
implements the pipeline flow control logic from the functional
specification".  This example does exactly that for the Figure 1
architecture:

1. derive the most liberal moe assignment,
2. synthesise a gate-level netlist for it and emit structural Verilog,
3. emit the equivalent behavioural (assign-per-flag) Verilog a designer
   would review,
4. emit the SVA checker module and ``bind`` directive that embed the
   combined specification into a simulation testbench,
5. prove, exhaustively, that the synthesised netlist is equivalent to the
   derived specification and satisfies both the functional and the
   performance halves.

Run with ``python examples/synthesize_interlock_rtl.py``.
"""

from repro.archs import example_architecture
from repro.assertions import sva_bind_directive, sva_module, testbench_assertions
from repro.checking import PropertyChecker
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.synth import behavioural_verilog, synthesis_to_verilog, synthesize_interlock


def main() -> None:
    architecture = example_architecture(num_registers=4)
    functional = build_functional_spec(architecture)
    derivation = symbolic_most_liberal(functional)

    # Structural synthesis: lower each derived moe equation to a shared
    # AND/OR/NOT netlist.
    synthesis = synthesize_interlock(functional, module_name="dac2002_interlock")
    print(f"Synthesised netlist: {synthesis.gate_count()} gates, "
          f"{len(synthesis.module.outputs())} moe outputs")
    print()

    print("=== Structural Verilog (excerpt) ===")
    structural = synthesis_to_verilog(synthesis)
    print("\n".join(structural.splitlines()[:25]))
    print("  ...")
    print()

    print("=== Behavioural Verilog (one assign per moe flag) ===")
    print(behavioural_verilog(functional, derivation, module_name="dac2002_interlock_rtl"))
    print()

    print("=== SVA checker module (excerpt) ===")
    assertions = testbench_assertions(functional)
    checker_text = sva_module(assertions, module_name="dac2002_spec_checker")
    print("\n".join(checker_text.splitlines()[:30]))
    print("  ...")
    print()
    print("=== bind directive ===")
    print(sva_bind_directive("dac2002_pipeline", "dac2002_spec_checker",
                             assertions=assertions))
    print()

    # Close the loop: the gate-level netlist must implement exactly the
    # combined (functional AND performance) specification.
    checker = PropertyChecker(functional, architecture, backend="bdd")
    netlist_interlock = synthesis.interlock()
    equivalence = checker.check_equivalence_with_derived(netlist_interlock)
    combined = checker.check_combined(netlist_interlock)
    print("=== Property check of the synthesised netlist ===")
    print(equivalence.describe())
    print(combined.describe())
    if not (equivalence.all_hold() and combined.all_hold()):
        raise SystemExit("synthesised netlist does not match the derived specification")
    print("The synthesised interlock provably stalls exactly when the functional "
          "specification requires — maximum performance by construction.")


if __name__ == "__main__":
    main()
