"""Completion-bus tuning: quantify the cost of an over-conservative interlock.

The paper's Section 4 reports that formalising the pipeline flow control
exposed inefficiencies at the completion stages and led to a redesign of the
completion logic "resulting in efficiency increase at the pipeline
completion stages".

This example reproduces that engineering workflow on the Figure 1
architecture:

* the *pre-redesign* interlock is a conservative implementation that only
  honours a completion-bus grant for a request registered on the previous
  cycle (a perfectly functional, but needlessly stalling, design);
* the *redesigned* interlock is the maximum-performance interlock derived
  from the functional specification.

Both are simulated on several workload profiles; stalls are classified as
necessary or unnecessary against the functional specification, and the
throughput difference is reported per workload.

Run with ``python examples/completion_bus_tuning.py``.
"""

from repro.analysis import classify_stalls, compare_traces, stats_table
from repro.archs import example_architecture
from repro.assertions import format_table
from repro.pipeline import ConservativeCompletionInterlock, reference_interlock, simulate
from repro.spec import build_functional_spec
from repro.workloads import (
    BALANCED,
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WAIT_HEAVY,
    WorkloadGenerator,
    completion_contention_program,
)

PROFILES = {
    "balanced": BALANCED,
    "hazard-heavy": HAZARD_HEAVY,
    "contention-heavy": CONTENTION_HEAVY,
    "wait-heavy": WAIT_HEAVY,
}


def main() -> None:
    architecture = example_architecture()
    functional = build_functional_spec(architecture)

    rows = []
    for label, profile in PROFILES.items():
        program = WorkloadGenerator(architecture, seed=7).generate(profile)
        conservative = simulate(
            architecture, ConservativeCompletionInterlock(functional, architecture), program
        )
        redesigned = simulate(architecture, reference_interlock(functional), program)

        comparison = compare_traces(conservative, redesigned)
        conservative_stalls = classify_stalls(conservative, functional)
        redesigned_stalls = classify_stalls(redesigned, functional)
        rows.append(
            {
                "workload": label,
                "cycles (pre-redesign)": conservative.num_cycles(),
                "cycles (redesigned)": redesigned.num_cycles(),
                "speedup": f"{comparison.speedup:.3f}",
                "unnecessary stalls (pre)": conservative_stalls.total_unnecessary(),
                "unnecessary stalls (post)": redesigned_stalls.total_unnecessary(),
            }
        )

    print("=== Completion-logic redesign across workloads ===")
    print(format_table(rows))
    print()

    # Zoom in on the workload the redesign was motivated by: back-to-back
    # completion-bus contention between the two pipes.
    program = completion_contention_program(architecture, length=96)
    conservative = simulate(
        architecture, ConservativeCompletionInterlock(functional, architecture), program
    )
    redesigned = simulate(architecture, reference_interlock(functional), program)
    print("=== Contention microbenchmark: per-design throughput ===")
    print(format_table(stats_table([conservative, redesigned])))
    print()

    breakdown = classify_stalls(conservative, functional)
    print("=== Pre-redesign stall classification (per stage) ===")
    print(breakdown.describe())
    print()
    worst = breakdown.worst_stage()
    print(f"Stage with the most unnecessary stalls: {worst}")
    print("Every one of those stalls is a performance bug in the sense of the "
          "paper: the functional specification does not require it.")

    if compare_traces(conservative, redesigned).speedup <= 1.0:
        raise SystemExit("expected the redesigned completion logic to be faster")


if __name__ == "__main__":
    main()
