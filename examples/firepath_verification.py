"""FirePath-scale verification campaign.

The original project applied the method to Broadcom's FirePath processor: a
two-sided LIW machine with deep execution pipes, shunt (decoupling) stages,
several completion buses, interrupts and WAIT states.  FirePath itself is
proprietary, so this example applies exactly the same flow to the bundled
FirePath-like architecture model:

1. build the functional specification of the whole machine automatically,
2. check the Section 3.1 preconditions,
3. derive the maximum-performance interlock,
4. exhaustively property-check it against the combined specification,
5. run a fault-injection campaign that plants the classes of defect the
   paper reports finding (unnecessary-stall inefficiencies and incorrect
   initialisation values) and show the derived assertions detect them.

Run with ``python examples/firepath_verification.py``.
"""

from repro.archs import firepath_like_architecture
from repro.assertions import format_table
from repro.checking import PropertyChecker
from repro.faults import FaultCampaign
from repro.pipeline import ClosedFormInterlock
from repro.spec import build_functional_spec, check_all_properties, symbolic_most_liberal
from repro.workloads import WorkloadProfile


def main(
    num_registers: int = 4,
    num_programs: int = 2,
    program_length: int = 32,
    max_cycles: int = 600,
) -> None:
    # A deliberately smaller FirePath-like configuration keeps this example
    # quick; scale the stage counts and register count up for a stress run
    # (the keyword arguments shrink it further for smoke-test runs).
    architecture = firepath_like_architecture(
        deep_pipe_stages=5,
        short_pipe_stages=3,
        loadstore_stages=3,
        num_registers=num_registers,
    )
    print(architecture.describe())
    print()

    functional = build_functional_spec(architecture)
    print(f"Functional specification: {len(functional.moe_flags())} pipeline stages, "
          f"{len(functional.input_signals())} input signals")

    report = check_all_properties(functional)
    print(report.describe())
    if not report.all_hold():
        raise SystemExit("the FirePath-like spec violates a Section 3.1 precondition")
    print()

    derivation = symbolic_most_liberal(functional)
    interlock = ClosedFormInterlock.from_derivation(derivation)
    print(f"Fixed-point derivation converged in {derivation.iterations} iteration(s).")
    print()

    # Exhaustive property checking of the derived interlock, under the
    # architecture's environment assumptions (arbitration is work-conserving,
    # at most one bus target per bus, one-hot issue register addresses, ...).
    checker = PropertyChecker(functional, architecture, backend="bdd")
    combined_report = checker.check_combined(interlock)
    print("=== Exhaustive property check of the derived interlock ===")
    print(combined_report.describe())
    if not combined_report.all_hold():
        raise SystemExit("derived interlock failed property checking (unexpected)")
    print()

    # The Section 4 result: plant representative control defects and verify
    # the generated testbench assertions find and classify all of them.
    campaign = FaultCampaign(
        architecture,
        functional,
        profile=WorkloadProfile(length=program_length),
        num_programs=num_programs,
        max_cycles=max_cycles,
    )
    summary = campaign.run_standard_set(reset_cycles=4)
    print("=== Fault-injection campaign (per fault class) ===")
    print(format_table(summary.summary_rows()))
    print()
    print("=== Fault-injection campaign (per fault) ===")
    print(format_table(summary.rows()))
    print()

    sim_detected = summary.detected_by_simulation()
    total = summary.total()
    effective = summary.effective_total()
    vacuous = summary.vacuous()
    print(f"Of {total} injected mutations, {vacuous} were provably vacuous (they do not "
          f"change the interlock — e.g. dropping a stall term of a stage whose successor "
          f"never stalls on the load/store pipes).")
    print(f"Simulation assertions flagged {sim_detected} faults; together with exhaustive "
          f"property checking {summary.detected_by_any()}/{effective} effective faults "
          f"were caught.")
    misses = [record for record in summary.simulation_misses() if not record.vacuous]
    if misses:
        print("Effective faults only the property checker caught "
              "(simulation is not exhaustive):")
        for record in misses:
            print(f"  - {record.fault.describe()}")
    if summary.detected_by_any() != effective:
        raise SystemExit("some effective injected faults escaped both verification routes")


if __name__ == "__main__":
    main()
