"""Section 4/5 — applying the method at FirePath scale.

The original project applied the method to the full FirePath processor
(two-sided, deeper pipes, shunt stages, interrupts, several completion
buses).  This experiment measures how the reproduction's pipeline-size
scaling behaves: specification size, fixed-point iterations, derivation
time and per-stage property-checking time as the architecture grows, plus
the ablation comparing the symbolic closed-form interlock against the
per-cycle concrete fixed point.
"""

import time

import pytest

from repro.archs import firepath_like_architecture, scaled_architecture
from repro.assertions import format_table
from repro.checking import PropertyChecker
from repro.pipeline import ClosedFormInterlock, SpecFixedPointInterlock, simulate
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.workloads import WorkloadGenerator, WorkloadProfile


def _measure(architecture):
    spec = build_functional_spec(architecture)
    start = time.perf_counter()
    derivation = symbolic_most_liberal(spec)
    derive_seconds = time.perf_counter() - start
    interlock = ClosedFormInterlock.from_derivation(derivation)
    start = time.perf_counter()
    checker = PropertyChecker(spec, architecture=architecture)
    assert checker.check_combined(interlock).all_hold()
    check_seconds = time.perf_counter() - start
    return {
        "architecture": architecture.name,
        "stages": architecture.stage_count(),
        "inputs": len(architecture.input_signals()),
        "fp iters": derivation.iterations,
        "derive [ms]": f"{derive_seconds * 1e3:.1f}",
        "prove combined [ms]": f"{check_seconds * 1e3:.1f}",
    }


def test_scale_table(benchmark):
    architectures = [
        scaled_architecture(num_pipes=2, pipe_depth=3, num_registers=2),
        scaled_architecture(num_pipes=2, pipe_depth=5, num_registers=4),
        scaled_architecture(num_pipes=4, pipe_depth=5, num_registers=4, num_buses=2),
        scaled_architecture(num_pipes=6, pipe_depth=6, num_registers=4, num_buses=2),
        firepath_like_architecture(num_registers=4, deep_pipe_stages=5),
        firepath_like_architecture(num_registers=8, deep_pipe_stages=6),
    ]
    rows = [_measure(architecture) for architecture in architectures]
    print()
    print("=== Scaling the method to FirePath-like sizes ===")
    print(format_table(rows))
    # The method stays tractable well past the example's 6 stages.
    assert int(rows[-1]["stages"]) >= 24

    # Timed kernel: the full derive-and-prove cycle on the smallest point.
    row = benchmark(_measure, architectures[0])
    assert int(row["stages"]) == 6


def test_firepath_like_derivation_speed(benchmark):
    architecture = firepath_like_architecture(num_registers=8, deep_pipe_stages=6)
    spec = build_functional_spec(architecture)
    derivation = benchmark(symbolic_most_liberal, spec)
    assert len(derivation.moe_expressions) == architecture.stage_count()


def test_ablation_symbolic_vs_concrete_interlock(benchmark):
    """Ablation: closed-form evaluation vs per-cycle fixed point in simulation."""
    architecture = firepath_like_architecture(num_registers=4, deep_pipe_stages=5)
    spec = build_functional_spec(architecture)
    program = WorkloadGenerator(architecture, seed=9).generate(WorkloadProfile(length=30))

    closed = ClosedFormInterlock.from_spec(spec)
    concrete = SpecFixedPointInterlock(spec)

    closed_trace = simulate(architecture, closed, program)
    concrete_trace = simulate(architecture, concrete, program)
    assert closed_trace.num_cycles() == concrete_trace.num_cycles()
    assert closed_trace.hazard_free() and concrete_trace.hazard_free()

    start = time.perf_counter()
    simulate(architecture, concrete, program)
    concrete_seconds = time.perf_counter() - start

    def run_closed():
        return simulate(architecture, closed, program)

    trace = benchmark(run_closed)
    assert trace.hazard_free()
    print()
    print(
        "ablation: per-cycle concrete fixed point takes "
        f"{concrete_seconds * 1e3:.1f} ms for the same program "
        "(closed-form timing reported by pytest-benchmark)"
    )
