"""Section 4 — the completion-logic redesign result.

"The completion logic has been redesigned as a consequence of our analysis,
resulting in efficiency increase at the pipeline completion stages."

The pre-redesign behaviour is modelled by a completion interlock that only
honours grants for requests registered in the previous cycle; the redesigned
behaviour is the derived maximum-performance interlock.  Both are run on a
completion-contention workload; the expected shape is that the redesigned
interlock retires the same instructions in fewer cycles, with the stall
reduction concentrated at the completion stages.
"""

import pytest

from repro.analysis import classify_stalls, compare_traces, stats_table
from repro.assertions import format_table
from repro.pipeline import ConservativeCompletionInterlock, reference_interlock, simulate
from repro.workloads import completion_contention_program


@pytest.fixture(scope="module")
def redesign_traces(paper_arch, paper_spec):
    program = completion_contention_program(paper_arch, length=80)
    old = simulate(paper_arch, ConservativeCompletionInterlock(paper_spec, paper_arch), program)
    new = simulate(paper_arch, reference_interlock(paper_spec), program)
    return old, new


def test_sec4_completion_redesign_shape(benchmark, redesign_traces, paper_spec):
    old, new = redesign_traces
    assert old.hazard_free() and new.hazard_free()
    assert old.retired_instructions == new.retired_instructions

    comparison = benchmark(compare_traces, old, new)
    print()
    print("=== Section 4: completion logic redesign ===")
    print(format_table(stats_table([old, new])))
    print()
    print(format_table([comparison.as_row()]))

    old_breakdown = classify_stalls(old, paper_spec)
    new_breakdown = classify_stalls(new, paper_spec)
    completion_flags = ("long.4.moe", "short.2.moe")
    old_completion_stalls = sum(
        old_breakdown.per_stage[flag].stall_cycles for flag in completion_flags
    )
    new_completion_stalls = sum(
        new_breakdown.per_stage[flag].stall_cycles for flag in completion_flags
    )
    print()
    print(f"completion-stage stall cycles: pre-redesign={old_completion_stalls} "
          f"redesigned={new_completion_stalls}")

    # The shape the paper reports: the redesign removes stalls at the
    # completion stages and improves overall throughput.
    assert comparison.speedup > 1.0
    assert new_completion_stalls < old_completion_stalls
    assert new.instructions_per_cycle() > old.instructions_per_cycle()


def test_sec4_completion_redesign_speed(benchmark, paper_arch, paper_spec):
    program = completion_contention_program(paper_arch, length=40)
    interlock = reference_interlock(paper_spec)
    trace = benchmark(simulate, paper_arch, interlock, program)
    assert trace.hazard_free()
