"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure or result of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for the paper-vs-measured
record).  Heavy artefacts are built once per session; the ``benchmark``
fixture then times the operation under study.
"""

from __future__ import annotations

import pytest

from repro.archs import example_architecture
from repro.spec import build_functional_spec, symbolic_most_liberal


@pytest.fixture(scope="session")
def paper_arch():
    """The paper's example architecture with its full 8-register scoreboard."""
    return example_architecture()


@pytest.fixture(scope="session")
def paper_spec(paper_arch):
    """Functional specification (Figure 2) of the example architecture."""
    return build_functional_spec(paper_arch)


@pytest.fixture(scope="session")
def paper_derivation(paper_spec):
    """Fixed-point derivation of the maximum-performance moe assignment."""
    return symbolic_most_liberal(paper_spec)
