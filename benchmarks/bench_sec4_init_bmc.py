"""Section 4 (results) — incorrect initialisation values, caught formally.

The paper reports finding "some incorrect initialisation values of control
signals" in FirePath via the testbench assertions.  The combinational
property checker cannot see such bugs (it has no notion of a reset
sequence), which is why the fault-detection campaign marks them "n/a" for
property checking.  Bounded model checking closes that gap: unrolling the
interlock over the first few cycles with a fresh copy of every input per
cycle is exhaustive for reset-window behaviour.

This benchmark plants a wrong reset value (a completion-stage moe flag held
low for the first cycles) on the example architecture and shows:

* the *performance* claims are refuted exactly within the reset window, at
  exactly the planted stage;
* a clean interlock passes the same bounded check;
* detection agrees with what the simulation testbench sees (assertion
  violations in the first cycles of a simulated run).

The timed kernel is the bounded performance check of the faulty model.
"""

import pytest

from repro.assertions import AssertionKind, monitor_trace, testbench_assertions
from repro.checking import (
    BoundedModelChecker,
    CombinationalModel,
    StuckResetModel,
    environment_formula,
)
from repro.faults import FaultInjector
from repro.pipeline import simulate
from repro.workloads import WorkloadGenerator, WorkloadProfile

RESET_CYCLES = 3
TARGET_FLAG = "long.4.moe"


@pytest.fixture(scope="module")
def clean_model(paper_derivation):
    return CombinationalModel(paper_derivation.moe_expressions, name="derived")


@pytest.fixture(scope="module")
def faulty_model(clean_model):
    return StuckResetModel(
        clean_model, forced_values={TARGET_FLAG: False}, cycles=RESET_CYCLES
    )


@pytest.fixture(scope="module")
def bounded_checker(paper_arch, paper_spec):
    return BoundedModelChecker(
        paper_spec, environment=environment_formula(paper_arch), stop_at_first=False
    )


def test_sec4_bmc_finds_bad_reset_value(benchmark, paper_arch, paper_spec, clean_model,
                                        faulty_model, bounded_checker):
    bound = RESET_CYCLES + 2

    clean = bounded_checker.check_performance(clean_model, bound=bound)
    faulty = bounded_checker.check_performance(faulty_model, bound=bound)

    print()
    print("=== Section 4: initialisation bug via bounded model checking ===")
    print(clean.describe())
    print(faulty.describe())

    assert clean.holds
    assert not faulty.holds
    violation_cycles = {violation.cycle for violation in faulty.violations}
    violation_flags = {violation.moe for violation in faulty.violations}
    # Refuted exactly inside the reset window, exactly at the planted stage.
    assert violation_cycles == set(range(RESET_CYCLES))
    assert violation_flags == {TARGET_FLAG}

    # Cross-check against the simulation testbench route the paper used.
    injector = FaultInjector(paper_spec, seed=5)
    fault = injector.bad_reset_fault(TARGET_FLAG, value=False, cycles=RESET_CYCLES)
    program = WorkloadGenerator(paper_arch, seed=5).generate(WorkloadProfile(length=30))
    trace = simulate(paper_arch, fault.interlock, program)
    report = monitor_trace(trace, testbench_assertions(paper_spec))
    performance_violations = [
        violation
        for violation in report.violations
        if violation.assertion.kind is AssertionKind.PERFORMANCE
    ]
    assert performance_violations
    assert all(violation.cycle < RESET_CYCLES for violation in performance_violations)

    # Timed kernel: the bounded performance check of the faulty model.
    result = benchmark(bounded_checker.check_performance, faulty_model, RESET_CYCLES + 1)
    assert not result.holds
