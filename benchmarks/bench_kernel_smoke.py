"""Symbolic-kernel benchmark smoke run (the ``repro bench`` scenarios).

A CI-sized pass over the same scenario registry the ``repro bench`` CLI
uses: every scenario is executed in ``--quick`` mode so the whole file
finishes in seconds while still touching the derivation, enumeration,
trace-sweep, property-check and BMC code paths end to end.  The full-size
timings live in ``BENCH_PR<n>.json`` at the repository root; regressions
against them are gated by ``repro bench --check``.
"""

from repro.perf import available_scenarios, run_benchmarks


def test_every_scenario_runs_in_quick_mode(benchmark):
    names = available_scenarios()
    results = benchmark(run_benchmarks, names=names, quick=True)
    assert set(results) == set(names)
    assert all(result.seconds >= 0.0 for result in results.values())

    print()
    print("=== quick-mode kernel benchmark timings ===")
    for name, result in results.items():
        print(f"  {name:24s} {result.seconds * 1000.0:9.2f} ms")
