"""Section 4 — property checking is exhaustive, simulation is not.

The paper: "Even the best simulation is by no means exhaustive, hence the
fact that the assertions are not triggered during simulation does not imply
that the design satisfies the specification.  A more thorough approach is to
use a property checking tool instead of simulation."

The experiment plants a functional bug that only matters in a rarely
exercised corner (the interlock ignores the WAIT condition), drives a
workload that never executes WAIT, and shows that the armed assertions stay
silent during simulation while the property checker refutes the functional
property immediately.
"""

import pytest

from repro.assertions import format_table, testbench_assertions
from repro.checking import PropertyChecker, random_simulation_campaign
from repro.faults import FaultInjector
from repro.workloads import WorkloadProfile


@pytest.fixture(scope="module")
def wait_blind_fault(paper_spec):
    """The long issue stage ignores op_is_WAIT (its first stall disjunct is index 1)."""
    injector = FaultInjector(paper_spec, seed=0)
    condition = paper_spec.condition_for("long.1.moe")
    disjuncts = list(condition.operands)
    wait_index = next(
        index for index, term in enumerate(disjuncts) if "op_is_WAIT" in term.variables()
    )
    return injector.missing_term_fault("long.1.moe", term_index=wait_index)


def test_sec4_simulation_misses_the_corner(benchmark, paper_arch, paper_spec, wait_blind_fault):
    # A workload with no WAIT instructions never exercises the dropped term.
    profile = WorkloadProfile(length=60, wait_rate=0.0)
    result = random_simulation_campaign(
        paper_arch,
        wait_blind_fault.interlock,
        testbench_assertions(paper_spec),
        num_programs=3,
        profile=profile,
        seed=0,
    )
    # Timed kernel: one exhaustive functional check of the faulty interlock.
    checker_for_timing = PropertyChecker(paper_spec, architecture=paper_arch)
    benchmark(checker_for_timing.check_functional, wait_blind_fault.interlock)
    print()
    print("=== Section 4: simulation vs property checking ===")
    rows = [
        {
            "route": "simulation (3 random programs, no WAITs)",
            "violations": result.functional_violations + result.performance_violations,
            "verdict": "missed" if not result.any_violation else "detected",
        }
    ]
    assert not result.any_violation, "the corner-case bug should slip past this testbench"

    checker = PropertyChecker(paper_spec, architecture=paper_arch)
    report = checker.check_functional(wait_blind_fault.interlock)
    rows.append(
        {
            "route": "property checking (exhaustive, BDD)",
            "violations": len(report.failures()),
            "verdict": "detected" if not report.all_hold() else "missed",
        }
    )
    print(format_table(rows))
    assert not report.all_hold(), "property checking must expose the dropped WAIT term"
    assert "long.1.moe" in report.failing_stages()


def test_sec4_simulation_with_waits_eventually_detects(benchmark, paper_arch, paper_spec,
                                                       wait_blind_fault):
    profile = WorkloadProfile(length=60, wait_rate=0.3)
    assertions = testbench_assertions(paper_spec)
    result = random_simulation_campaign(
        paper_arch,
        wait_blind_fault.interlock,
        assertions,
        num_programs=3,
        profile=profile,
        seed=0,
    )
    print()
    print(
        "with WAIT-heavy stimulus the same assertions do fire: "
        f"{result.functional_violations} functional violations"
    )
    assert result.functional_violations > 0

    # Timed kernel: one WAIT-heavy program simulated with the assertions armed.
    timed = benchmark(
        random_simulation_campaign,
        paper_arch,
        wait_blind_fault.interlock,
        assertions,
        num_programs=1,
        profile=WorkloadProfile(length=30, wait_rate=0.3),
        seed=1,
    )
    assert timed.functional_violations >= 0
