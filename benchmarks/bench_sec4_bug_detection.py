"""Section 4 (results) — do the derived assertions find injected control bugs?

The paper reports uncovering pipeline-flow inefficiencies (unnecessary
stalls) and incorrect initialisation values in FirePath by adding the
derived assertions to the testbench, and recommends exhaustive property
checking as the more thorough route.  This experiment injects representative
defects of every class into the known-good interlock of the example
architecture and measures detection and classification by (a) the
simulation testbench assertions and (b) exhaustive property checking.

Expected shape (paper):

* every planted defect is caught by at least one of the two routes;
* property checking, where it applies (steady-state faults), catches and
  correctly classifies every defect — it is exhaustive;
* the initialisation errors, which are outside the combinational property
  check, are exactly what the simulation assertions catch (the class of bug
  the paper reports finding that way);
* the simulation route misses some steady-state defects — either because
  the random workload never exercises the condition, or because an extra
  stall at the lock-stepped issue pair is mutually "justified" by the
  partner stage — which is the paper's argument that "even the best
  simulation is by no means exhaustive";
* every fault the simulation assertions do flag is classified as the class
  that was injected (performance faults trip only performance assertions,
  functional faults trip functional assertions plus physical hazards).
"""

import pytest

from repro.assertions import format_table
from repro.faults import FaultCampaign, FaultClass, FaultInjector
from repro.workloads import WorkloadProfile


@pytest.fixture(scope="module")
def campaign_summary(paper_arch, paper_spec):
    campaign = FaultCampaign(
        paper_arch,
        paper_spec,
        profile=WorkloadProfile(length=40),
        num_programs=2,
        max_cycles=400,
    )
    return campaign.run_standard_set(reset_cycles=4)


def test_sec4_fault_detection_campaign(benchmark, paper_arch, paper_spec, campaign_summary):
    summary = campaign_summary
    print()
    print("=== Section 4: injected-fault detection (example architecture) ===")
    print(format_table(summary.summary_rows()))
    print()
    print(format_table(summary.rows()))

    # Headline reproduction claims.
    # 1. Nothing escapes both routes.
    assert summary.detected_by_any() == summary.total()

    # 2. Property checking is exhaustive where it applies, and classifies
    #    every detected steady-state fault correctly.
    applicable = summary.property_check_applicable()
    assert summary.detected_by_property_check() == applicable
    assert summary.property_correctly_classified() == applicable

    # 3. The initialisation faults are outside the combinational property
    #    check and are all caught by the simulation assertions — the way the
    #    paper reports finding FirePath's incorrect reset values.
    init_total = summary.total(FaultClass.INITIALISATION)
    assert init_total > 0
    assert summary.detected_by_simulation(FaultClass.INITIALISATION) == init_total
    assert summary.property_check_applicable(FaultClass.INITIALISATION) == 0

    # 4. Simulation detects most faults but not all of them (the
    #    exhaustiveness gap), and whatever it flags it classifies correctly.
    sim_detected = summary.detected_by_simulation()
    assert 0 < sim_detected <= summary.total()
    assert summary.correctly_classified() == sim_detected
    for record in summary.simulation_misses():
        # Every simulation miss is still caught by the property checker.
        assert record.fault.fault_class is not FaultClass.INITIALISATION
        assert record.detected_by_property_check

    # The timed kernel: one representative fault evaluated end to end.
    campaign = FaultCampaign(
        paper_arch,
        paper_spec,
        profile=WorkloadProfile(length=30),
        num_programs=1,
        max_cycles=300,
    )
    fault = FaultInjector(paper_spec, seed=11).extra_stall_fault("long.4.moe")
    record = benchmark(campaign.run_fault, fault)
    assert record.detected_by_simulation
