"""Section 4 (results) — "even the best simulation is by no means exhaustive".

The paper argues for property checking because a testbench only sees the
behaviours its stimulus happens to exercise.  This benchmark quantifies
that argument on the example architecture: it measures *specification
coverage* — which disjuncts of the per-stage stall conditions a simulation
run actually exercised — for increasingly rich workloads, and shows that

* a narrow workload leaves stall-condition disjuncts uncovered, and an
  injected bug guarded by an uncovered disjunct survives that testbench
  silently;
* widening the workload mix increases coverage monotonically, but the
  property checker needs none of it — it refutes the same planted bug
  exhaustively.

The timed kernel is the coverage scoring of one balanced run.
"""

import pytest

from repro.analysis import coverage_of
from repro.assertions import format_table, monitor_trace, testbench_assertions
from repro.checking import PropertyChecker
from repro.faults import FaultInjector
from repro.pipeline import reference_interlock, simulate
from repro.workloads import (
    BALANCED,
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WAIT_HEAVY,
    WorkloadGenerator,
    WorkloadProfile,
)

NARROW = WorkloadProfile(length=40, dependency_rate=0.0, wait_rate=0.0, store_rate=0.0)


@pytest.fixture(scope="module")
def reference(paper_spec):
    return reference_interlock(paper_spec)


def _traces(paper_arch, reference, profiles, seed=11):
    generator = WorkloadGenerator(paper_arch, seed=seed)
    return [
        simulate(paper_arch, reference, generator.generate(profile)) for profile in profiles
    ]


def test_sec4_coverage_gap_and_exhaustiveness(benchmark, paper_arch, paper_spec, reference):
    ladders = {
        "narrow (independent ALU ops only)": [NARROW],
        "+ hazard-heavy": [NARROW, HAZARD_HEAVY],
        "+ contention-heavy": [NARROW, HAZARD_HEAVY, CONTENTION_HEAVY],
        "+ wait-heavy": [NARROW, HAZARD_HEAVY, CONTENTION_HEAVY, WAIT_HEAVY],
        "+ balanced": [NARROW, HAZARD_HEAVY, CONTENTION_HEAVY, WAIT_HEAVY, BALANCED],
    }
    rows = []
    coverages = []
    for label, profiles in ladders.items():
        report = coverage_of(paper_spec, _traces(paper_arch, reference, profiles))
        coverages.append(report.overall_disjunct_coverage)
        rows.append(
            {
                "workload mix": label,
                "programs": len(profiles),
                "disjunct coverage": f"{100.0 * report.overall_disjunct_coverage:.1f}%",
                "uncovered disjuncts": len(report.uncovered()),
            }
        )
    print()
    print("=== Section 4: specification coverage of simulation ===")
    print(format_table(rows))

    # Richer stimulus never reduces coverage, and the narrow workload leaves
    # real holes behind which bugs can hide.
    assert all(later >= earlier for earlier, later in zip(coverages, coverages[1:]))
    narrow_report = coverage_of(paper_spec, _traces(paper_arch, reference, [NARROW]))
    assert not narrow_report.fully_covered

    # Plant a bug behind an uncovered WAIT disjunct: the narrow testbench
    # cannot see it, the property checker refutes it immediately.
    injector = FaultInjector(paper_spec, seed=2)
    fault = injector.missing_term_fault(
        "long.1.moe",
        term_index=_wait_disjunct_index(paper_spec, "long.1.moe"),
    )
    narrow_program = WorkloadGenerator(paper_arch, seed=11).generate(NARROW)
    trace = simulate(paper_arch, fault.interlock, narrow_program)
    report = monitor_trace(trace, testbench_assertions(paper_spec))
    assert report.clean(), "the narrow testbench must miss the WAIT-guarded bug"

    checker = PropertyChecker(paper_spec, paper_arch)
    assert not checker.check_functional(fault.interlock).all_hold()

    # Timed kernel: coverage scoring of one balanced run.
    balanced_trace = _traces(paper_arch, reference, [BALANCED], seed=3)[0]
    scored = benchmark(coverage_of, paper_spec, [balanced_trace])
    assert scored.stages


def _wait_disjunct_index(spec, moe):
    from repro.expr import Or, to_text

    condition = spec.condition_for(moe)
    disjuncts = list(condition.operands) if isinstance(condition, Or) else [condition]
    for index, disjunct in enumerate(disjuncts):
        if "WAIT" in to_text(disjunct):
            return index
    raise AssertionError(f"no WAIT disjunct in {moe}")
