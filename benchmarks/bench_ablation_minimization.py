"""Ablation — two-level minimisation of the derived interlock equations.

The synthesis path can either lower the derived closed forms directly or
run the :mod:`repro.synth.optimize` pass (exact Quine–McCluskey per flag
where the support is small, disjunct-level clean-up otherwise) first.  This
benchmark quantifies what the pass buys across the bundled architectures:
literal counts of the equations and gate counts of the synthesised
netlists, before and after, with equivalence verified as part of the pass.

The timed kernel is the optimisation of the example architecture's derived
equations (the step a designer would re-run on every specification change).
"""

import pytest

from repro.archs import risc5_architecture
from repro.assertions import format_table
from repro.spec import build_functional_spec, symbolic_most_liberal
from repro.synth import optimize_derivation, synthesize_interlock


def _architectures(paper_arch):
    return {
        "dac2002-example": paper_arch,
        "risc5": risc5_architecture(),
    }


def test_ablation_minimization_costs(benchmark, paper_arch, paper_spec, paper_derivation):
    rows = []
    for name, architecture in _architectures(paper_arch).items():
        spec = build_functional_spec(architecture)
        derivation = symbolic_most_liberal(spec)
        report = optimize_derivation(spec, derivation)
        plain = synthesize_interlock(spec, derivation=derivation)
        optimized = synthesize_interlock(spec, derivation=report.derivation)
        rows.append(
            {
                "architecture": name,
                "literals before": report.total_literals_before(),
                "literals after": report.total_literals_after(),
                "gates before": plain.gate_count(),
                "gates after": optimized.gate_count(),
            }
        )
        # The pass must never make the equations costlier, and the
        # synthesised netlist must not grow.
        assert report.total_literals_after() <= report.total_literals_before()
        assert optimized.gate_count() <= plain.gate_count() * 1.05
    print()
    print("=== Ablation: two-level minimisation before synthesis ===")
    print(format_table(rows))

    # Timed kernel: the optimisation pass on the example architecture's
    # derived equations (what a designer re-runs after every spec change).
    report = benchmark(optimize_derivation, paper_spec, paper_derivation)
    assert report.total_literals_after() <= report.total_literals_before()
