"""Ablation — BDD variable ordering for interlock formulas.

DESIGN.md calls out the variable-ordering choice of the BDD backend as a
design decision to ablate: property checking compiles the combined
specification (with the implementation substituted) into BDDs, and the
node count — hence runtime and memory — depends on the static order.

This benchmark compiles the derived maximum-performance moe equations and
the combined specification of the paper's example architecture under three
static orders:

* ``sorted``     — alphabetical, the naive baseline;
* ``occurrence`` — first-occurrence order over the formulas (a cheap fan-in
  heuristic);
* ``stage-major``— signals grouped by pipeline stage, deepest stage first,
  mirroring how control flows backwards from the completion stages.

All orders must of course produce the same functions (checked via
satisfying-assignment counts); the table reports the node counts, and the
timed kernel compiles the formulas under the stage-major order.
"""

import pytest

from repro.assertions import format_table
from repro.bdd import BddManager, compile_expr, occurrence_order, order_from_exprs, stage_major_order
from repro.pipeline import signals as sig


def _stage_major_groups(architecture):
    """Per-stage signal groups, deepest stages first, then globals."""
    groups = []
    for pipe in architecture.pipes:
        for stage in reversed(pipe.stages()):
            group = [stage.moe, stage.rtm]
            if stage.index == pipe.num_stages:
                group.extend([sig.req_name(pipe.name), sig.gnt_name(pipe.name)])
            groups.append(group)
    globals_group = (
        architecture.scoreboard_signals()
        + architecture.bus_target_signals()
        + architecture.issue_regaddr_signals()
        + architecture.extra_stall_signals()
    )
    groups.append(globals_group)
    return groups


def _orders(architecture, formulas):
    return {
        "sorted": order_from_exprs(formulas),
        "occurrence": occurrence_order(formulas),
        "stage-major": stage_major_order(_stage_major_groups(architecture)),
    }


@pytest.fixture(scope="module")
def formulas(paper_spec, paper_derivation):
    derived = list(paper_derivation.moe_expressions.values())
    combined = [clause.combined_formula() for clause in paper_spec.clauses]
    return derived + combined


def test_ablation_bdd_ordering_node_counts(benchmark, paper_arch, paper_spec, formulas):
    rows = []
    reference_counts = None
    support = sorted({name for formula in formulas for name in formula.variables()})
    for label, order in _orders(paper_arch, formulas).items():
        manager = BddManager(order)
        nodes = [compile_expr(manager, formula) for formula in formulas]
        counts = [manager.sat_count(node, over=support) for node in nodes]
        if reference_counts is None:
            reference_counts = counts
        # Whatever the order, the functions must be identical.
        assert counts == reference_counts
        rows.append(
            {
                "order": label,
                "declared variables": len(manager.variable_order()),
                "live nodes": manager.num_nodes(),
                "largest formula (nodes)": max(manager.dag_size(node) for node in nodes),
            }
        )
    print()
    print("=== Ablation: BDD variable ordering (example architecture) ===")
    print(format_table(rows))
    assert all(row["live nodes"] > 0 for row in rows)

    # Timed kernel: compiling every formula under the stage-major order.
    order = stage_major_order(_stage_major_groups(paper_arch))

    def compile_all():
        manager = BddManager(order)
        for formula in formulas:
            compile_expr(manager, formula)
        return manager.num_nodes()

    nodes = benchmark(compile_all)
    assert nodes > 0
