"""Figure 3 — the maximum performance specification SPEC_perf.

Derives the performance specification from the functional one by the
Section 3.2 fixed point and proves it equivalent to the paper's Figure 3
formula.  The benchmark times the symbolic fixed-point derivation — the
core algorithmic step of the method.
"""

from repro.archs import paper_combined_formula, paper_performance_formula
from repro.bdd import ExprBddContext
from repro.expr.transform import substitute
from repro.spec import derive_performance_spec, symbolic_most_liberal


def test_fig3_symbolic_derivation(benchmark, paper_spec):
    derivation = benchmark(symbolic_most_liberal, paper_spec)
    assert derivation.iterations <= len(paper_spec.moe_flags()) + 1
    input_set = set(paper_spec.input_signals())
    assert all(e.variables() <= input_set for e in derivation.moe_expressions.values())

    context = ExprBddContext()
    residual = substitute(paper_combined_formula(), derivation.moe_expressions)
    assert context.is_valid(residual)

    print()
    print("=== Figure 3: derived maximum-performance moe assignment ===")
    print(derivation.describe())


def test_fig3_performance_spec_equivalence(benchmark, paper_spec):
    performance = benchmark(derive_performance_spec, paper_spec)
    context = ExprBddContext()
    assert context.are_equivalent(performance.formula(), paper_performance_formula())

    print()
    print("=== Figure 3: maximum performance specification ===")
    print(performance.describe())
    print()
    print("equivalent to the paper's Figure 3 formula: yes (BDD-checked)")
