"""Figure 2 — the functional specification SPEC_func.

The paper writes the per-stage stall conditions by hand; here they are
generated from the architecture description and proved logically equivalent
to the published formula (per stage and as a whole).  The benchmark times
the automatic specification construction.
"""

from repro.archs import paper_functional_formula, paper_stall_conditions
from repro.bdd import ExprBddContext
from repro.spec import build_functional_spec


def test_fig2_build_functional_spec(benchmark, paper_arch):
    spec = benchmark(build_functional_spec, paper_arch)
    assert len(spec.clauses) == 6
    assert spec.is_monotone()

    context = ExprBddContext()
    for moe, condition in paper_stall_conditions().items():
        assert context.are_equivalent(spec.condition_for(moe), condition), moe
    assert context.are_equivalent(spec.functional_formula(), paper_functional_formula())

    print()
    print("=== Figure 2: functional specification (auto-generated) ===")
    print(spec.describe())
    print()
    print("equivalent to the paper's Figure 2 formula: yes (BDD-checked, per stage and overall)")


def test_fig2_monotonicity_structure(benchmark, paper_spec):
    report = benchmark(paper_spec.monotonicity_report)
    assert all(
        not positive
        for per_clause in report.values()
        for positive, _negative in per_clause.values()
    )
    print()
    print("moe dependencies (control flows backwards from the completion stages):")
    for moe, used in paper_spec.moe_dependencies().items():
        print(f"  {moe} <- {used if used else 'primary inputs only'}")
