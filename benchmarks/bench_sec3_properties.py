"""Section 3 — machine-checked soundness properties of the derivation.

Properties (1)-(3) and the maximality theorem are verified exhaustively with
BDDs for the example architecture (and, as a scale point, the FirePath-like
model).  The benchmark times the full property check on the example.
"""

from repro.archs import firepath_like_architecture
from repro.spec import build_functional_spec, check_all_properties


def test_sec3_properties_example(benchmark, paper_spec, paper_derivation):
    report = benchmark(check_all_properties, paper_spec, paper_derivation)
    assert report.all_hold(), report.describe()
    print()
    print("=== Section 3 properties (example architecture) ===")
    print(report.describe())


def test_sec3_properties_firepath_like(benchmark):
    architecture = firepath_like_architecture(num_registers=4, deep_pipe_stages=5)
    spec = build_functional_spec(architecture)
    report = benchmark(check_all_properties, spec)
    assert report.all_hold(), report.describe()
    print()
    print("=== Section 3 properties (FirePath-like architecture) ===")
    print(report.describe())
