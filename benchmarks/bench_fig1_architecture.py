"""Figure 1 — the example pipeline architecture.

Rebuilds the two-pipe/one-completion-bus architecture of the paper's case
study, checks its structural invariants and renders the Figure-1 style
diagram.  The benchmark times architecture construction and validation.
"""

from repro.archs import example_architecture


def test_fig1_build_and_validate(benchmark):
    architecture = benchmark(example_architecture)
    assert architecture.stage_count() == 6
    assert [pipe.num_stages for pipe in architecture.pipes] == [4, 2]
    assert architecture.bus("c").priority == ("short", "long")
    assert architecture.lockstep_partners("long") == ["short"]
    assert architecture.scoreboard.num_registers == 8

    print()
    print("=== Figure 1: example pipeline architecture ===")
    print(architecture.ascii_diagram())
    print()
    print(architecture.describe())


def test_fig1_signal_inventory(benchmark):
    architecture = example_architecture()
    inputs = benchmark(architecture.input_signals)
    assert len(inputs) == len(set(inputs))
    print()
    print(f"interlock primary inputs: {len(inputs)}")
    print(f"moe flags:               {len(architecture.moe_signals())}")
