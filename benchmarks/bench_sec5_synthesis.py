"""Section 5 (further work) — synthesising the interlock RTL from the spec.

The paper's end goal is to "generate the HDL code that implements the
pipeline flow control logic from the functional specification".  This
experiment synthesises the maximum-performance interlock for the example
and FirePath-like architectures, proves the gate-level result equivalent to
the derived specification, runs it in the simulator, and reports gate
counts.  The benchmark times the full specification-to-netlist synthesis.
"""

import pytest

from repro.archs import firepath_like_architecture
from repro.assertions import format_table
from repro.checking import PropertyChecker
from repro.pipeline import simulate
from repro.spec import build_functional_spec
from repro.synth import synthesis_to_verilog, synthesize_interlock
from repro.workloads import WorkloadGenerator, WorkloadProfile


def test_sec5_synthesize_example_interlock(benchmark, paper_arch, paper_spec):
    synthesis = benchmark(synthesize_interlock, paper_spec)

    checker = PropertyChecker(paper_spec, architecture=paper_arch)
    assert checker.check_combined(synthesis.interlock()).all_hold()

    program = WorkloadGenerator(paper_arch, seed=5).generate(WorkloadProfile(length=40))
    trace = simulate(paper_arch, synthesis.interlock(), program)
    assert trace.hazard_free()

    verilog = synthesis_to_verilog(synthesis)
    behavioural = synthesis_to_verilog(synthesis, behavioural=True)
    print()
    print("=== Section 5: synthesised interlock (example architecture) ===")
    print(
        format_table(
            [
                {
                    "architecture": paper_arch.name,
                    "moe outputs": len(paper_spec.moe_flags()),
                    "inputs": len(paper_spec.input_signals()),
                    "primitive gates": synthesis.gate_count(),
                    "verilog lines (gate-level)": len(verilog.splitlines()),
                    "verilog lines (behavioural)": len(behavioural.splitlines()),
                }
            ]
        )
    )
    print()
    print("behavioural RTL excerpt:")
    for line in behavioural.splitlines()[:12]:
        print(f"  {line}")


def test_sec5_synthesize_firepath_like(benchmark):
    architecture = firepath_like_architecture(num_registers=4, deep_pipe_stages=5)
    spec = build_functional_spec(architecture)
    synthesis = benchmark(synthesize_interlock, spec)
    assert synthesis.gate_count() > 0
    print()
    print(
        f"FirePath-like interlock: {len(spec.moe_flags())} moe outputs, "
        f"{synthesis.gate_count()} primitive gates"
    )
